#include "runtime/reliability.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace nc {

namespace {

// Salts separating the reliability decision streams from each other and
// from the fault salts in faults.cpp (the engines also derive distinct
// seeds from the network seed, so the separation is belt-and-braces).
constexpr std::uint64_t kSaltRelRetx = 0x4e58;    ///< retransmit survival
constexpr std::uint64_t kSaltRelAck = 0xacc5;     ///< ACK survival
constexpr std::uint64_t kSaltRelRepair = 0x4efa;  ///< repair-chunk survival

}  // namespace

void ReliabilityPlan::validate() const {
  if (mode != Mode::kOff && mode != Mode::kAck && mode != Mode::kFec) {
    throw std::invalid_argument(
        "reliability plan: rel_mode must be 0 (off), 1 (ack) or 2 (fec)");
  }
  if (ack_timeout == 0) {
    throw std::invalid_argument(
        "reliability plan: rel_ack_timeout must be >= 1 round");
  }
  if (max_retx == 0) {
    throw std::invalid_argument(
        "reliability plan: rel_max_retx must be >= 1 (a zero-attempt ARQ is "
        "just the lossy channel)");
  }
  if (fec_window == 0) {
    throw std::invalid_argument(
        "reliability plan: rel_fec_window must be >= 1 round");
  }
}

std::string ReliabilityPlan::summary() const {
  if (!any()) return "none";
  std::ostringstream os;
  if (mode == Mode::kAck) {
    os << "ack(timeout=" << ack_timeout << ",retx=" << max_retx << ")";
  } else {
    os << "fec(window=" << fec_window << ",repair=" << fec_repair << ")";
  }
  return os.str();
}

const ParamSet& reliability_param_defaults() {
  static const ParamSet defaults = [] {
    ReliabilityPlan d;
    return ParamSet()
        .with("rel_mode", static_cast<std::uint64_t>(d.mode))
        .with("rel_ack_timeout", d.ack_timeout)
        .with("rel_max_retx", d.max_retx)
        .with("rel_fec_window", d.fec_window)
        .with("rel_fec_repair", d.fec_repair)
        .with("rel_seed", d.rel_seed);
  }();
  return defaults;
}

ReliabilityPlan reliability_plan_from_params(const ParamSet& params) {
  ReliabilityPlan plan;
  const auto u64 = [&](const char* key, std::uint64_t def) {
    const double v = params.get_double_or(key, static_cast<double>(def));
    if (v < 0.0) {
      throw std::invalid_argument(std::string("reliability plan: '") + key +
                                  "' must be >= 0");
    }
    return static_cast<std::uint64_t>(v);
  };
  const std::uint64_t mode = u64("rel_mode", 0);
  if (mode > 2) {
    throw std::invalid_argument(
        "reliability plan: rel_mode must be 0 (off), 1 (ack) or 2 (fec)");
  }
  plan.mode = static_cast<ReliabilityPlan::Mode>(mode);
  plan.ack_timeout = u64("rel_ack_timeout", plan.ack_timeout);
  plan.max_retx = u64("rel_max_retx", plan.max_retx);
  plan.fec_window = u64("rel_fec_window", plan.fec_window);
  plan.fec_repair = u64("rel_fec_repair", plan.fec_repair);
  plan.rel_seed = u64("rel_seed", plan.rel_seed);
  plan.validate();
  return plan;
}

ReliabilityPlan parse_reliability_plan(const std::string& csv) {
  const ParamSet overrides =
      parse_params_csv(csv, &reliability_param_defaults());
  const ParamSet merged =
      merge_params(reliability_param_defaults(), overrides, "reliability plan");
  return reliability_plan_from_params(merged);
}

ReliabilityEngine::ReliabilityEngine(const ReliabilityPlan& plan,
                                     const FaultPlan& fault_plan,
                                     const FaultEngine* faults,
                                     std::size_t directed_edges,
                                     unsigned header_bits,
                                     std::size_t bandwidth_bits,
                                     std::uint64_t net_seed)
    : plan_(plan),
      fault_plan_(fault_plan),
      faults_(faults),
      seed_(plan.rel_seed != 0 ? plan.rel_seed
                               : net_seed ^ 0x4e11ab1e5eedULL),
      ack_bits_(header_bits),
      repair_bits_(bandwidth_bits) {
  plan_.validate();

  // Channel loss marginal without the targeted hook: the iid loss composed
  // with the Gilbert–Elliott stationary marginal. The per-attempt draws use
  // this rate instead of the chain itself — see the determinism contract in
  // the header.
  double ge_marginal = 0.0;
  if (fault_plan_.ge_p > 0.0) {
    const double pi_bad =
        fault_plan_.ge_p / (fault_plan_.ge_p + fault_plan_.ge_r);
    ge_marginal = pi_bad * fault_plan_.ge_loss_bad +
                  (1.0 - pi_bad) * fault_plan_.ge_loss_good;
  }
  base_marginal_ = 1.0 - (1.0 - fault_plan_.loss) * (1.0 - ge_marginal);

  floor_.assign(directed_edges, 0);
  if (fec()) {
    fec_win_.assign(directed_edges, 0);
    fec_cnt_.assign(directed_edges, 0);
    fec_blocked_.assign(directed_edges, 0);
  }
}

double ReliabilityEngine::loss_marginal(NodeId src, NodeId dst) const {
  double p = base_marginal_;
  if (fault_plan_.loss_hook) {
    const double h =
        std::clamp(fault_plan_.loss_hook(src, dst), 0.0, 1.0);
    if (h > 0.0) p = 1.0 - (1.0 - p) * (1.0 - h);
  }
  return p;
}

bool ReliabilityEngine::silenced(NodeId src, NodeId dst,
                                 std::uint64_t round) const {
  return faults_ != nullptr && (faults_->crashed_at(src, round) ||
                                faults_->crashed_at(dst, round));
}

void ReliabilityEngine::arq_account_delivered(std::size_t edge, NodeId src,
                                              NodeId dst, std::uint64_t round,
                                              std::uint16_t kind,
                                              std::uint64_t wire_bits,
                                              RunStats& t) {
  (void)edge;
  const double p_rev = loss_marginal(dst, src);
  // The receiver ACKs every copy it gets; attempt 0's copy is the message
  // the ordinary deliver path already charges.
  t.acks_sent += 1;
  if (fault_uniform(seed_, kSaltRelAck, round, dst, src) >= p_rev) {
    t.bits += ack_bits_;
    t.bits_by_kind[kRelAck] += ack_bits_;
    return;
  }
  // Lost ACK: the sender cannot distinguish a lost message from a lost ACK
  // and resends on the attempt schedule; the receiver discards the
  // duplicates but the wire still carries them (and their ACKs).
  const double p_fwd = loss_marginal(src, dst);
  for (std::uint64_t i = 1; i <= plan_.max_retx; ++i) {
    const std::uint64_t ar = round + i * plan_.ack_timeout;
    t.messages_retransmitted += 1;
    if (silenced(src, dst, ar) ||
        fault_uniform(seed_, kSaltRelRetx, ar, src, dst) < p_fwd) {
      continue;
    }
    t.bits += wire_bits;
    t.bits_by_kind[kind & (kMaxMsgKinds - 1)] += wire_bits;
    t.acks_sent += 1;
    if (fault_uniform(seed_, kSaltRelAck, ar, dst, src) >= p_rev) {
      t.bits += ack_bits_;
      t.bits_by_kind[kRelAck] += ack_bits_;
      return;
    }
  }
}

std::uint64_t ReliabilityEngine::arq_recover(std::size_t edge, NodeId src,
                                             NodeId dst, std::uint64_t round,
                                             std::uint16_t kind,
                                             std::uint64_t wire_bits,
                                             RunStats& t) {
  const double p_fwd = loss_marginal(src, dst);
  const double p_rev = loss_marginal(dst, src);
  std::uint64_t delivered_round = kNever;
  for (std::uint64_t i = 1; i <= plan_.max_retx; ++i) {
    const std::uint64_t ar = round + i * plan_.ack_timeout;
    t.messages_retransmitted += 1;
    if (silenced(src, dst, ar) ||
        fault_uniform(seed_, kSaltRelRetx, ar, src, dst) < p_fwd) {
      continue;
    }
    if (delivered_round == kNever) {
      // First surviving resend: this copy is the delivery. The caller
      // stages the message for `ar` through the delayed-delivery path,
      // which charges its messages/bits there.
      delivered_round = ar;
    } else {
      // Later surviving resend (its ACK was lost): a duplicate copy.
      t.bits += wire_bits;
      t.bits_by_kind[kind & (kMaxMsgKinds - 1)] += wire_bits;
    }
    t.acks_sent += 1;
    if (fault_uniform(seed_, kSaltRelAck, ar, dst, src) >= p_rev) {
      t.bits += ack_bits_;
      t.bits_by_kind[kRelAck] += ack_bits_;
      break;
    }
  }
  (void)edge;
  return delivered_round;
}

bool ReliabilityEngine::fec_on_message(std::size_t edge, NodeId src,
                                       NodeId dst, std::uint64_t round,
                                       bool lost, RunStats& t,
                                       bool* first_park) {
  const std::uint64_t w = (round - 1) / plan_.fec_window;
  if (fec_win_[edge] != w + 1) {
    // Crossing into a new window. A blocked edge can never get here: its
    // pending window is resolved at the top of the stage phase of every
    // later round, strictly before any new message on the edge is staged.
    nc_invariant(fec_blocked_[edge] == 0,
                 "FEC window transition on a blocked edge — pending windows "
                 "must be resolved before new traffic is staged");
    if (fec_win_[edge] != 0) {
      charge_repairs(edge, src, dst, fec_win_[edge] - 1, t);
    }
    fec_win_[edge] = w + 1;
    fec_cnt_[edge] = 0;
  }
  fec_cnt_[edge] += 1;
  if (fec_blocked_[edge] != 0) {
    *first_park = false;
    return true;
  }
  if (lost) {
    fec_blocked_[edge] = 1;
    *first_park = true;
    return true;
  }
  *first_park = false;
  return false;
}

bool ReliabilityEngine::fec_resolve(std::size_t edge, NodeId src, NodeId dst,
                                    std::uint64_t losses, RunStats& t) {
  nc_invariant(fec_win_[edge] != 0 && fec_blocked_[edge] != 0,
               "fec_resolve on an edge without a pending blocked window");
  const std::uint64_t w = fec_win_[edge] - 1;
  const double p_fwd = loss_marginal(src, dst);
  std::uint64_t survived = 0;
  for (std::uint64_t j = 0; j < plan_.fec_repair; ++j) {
    // Keyed on the *window index*, not a round: charge_repairs below draws
    // the same keys, so lazily-charged and resolution-time evaluations of
    // one window always agree, whatever order the round loop reaches them.
    if (fault_uniform(seed_, kSaltRelRepair, w, edge, j) >= p_fwd) {
      survived += 1;
    }
  }
  charge_repairs(edge, src, dst, w, t);
  const bool recovered = losses <= survived;
  fec_win_[edge] = 0;
  fec_cnt_[edge] = 0;
  fec_blocked_[edge] = 0;
  return recovered;
}

void ReliabilityEngine::charge_repairs(std::size_t edge, NodeId src,
                                       NodeId dst, std::uint64_t w,
                                       RunStats& t) {
  if (fec_cnt_[edge] == 0) return;  // empty windows send no repairs
  t.fec_repairs += plan_.fec_repair;
  const double p_fwd = loss_marginal(src, dst);
  for (std::uint64_t j = 0; j < plan_.fec_repair; ++j) {
    if (fault_uniform(seed_, kSaltRelRepair, w, edge, j) >= p_fwd) {
      // Only chunks that actually arrive are delivered traffic; lost
      // repairs cost the sender a slot but never reach the receiver.
      t.bits += repair_bits_;
      t.bits_by_kind[kRelRepair] += repair_bits_;
    }
  }
  fec_cnt_[edge] = 0;
}

}  // namespace nc
