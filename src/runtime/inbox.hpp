#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/stream.hpp"
#include "util/check.hpp"

namespace nc {

/// Flat, kind-bucketed store of a node's incoming streams.
///
/// The previous implementation was a `std::map<(ni, StreamKey), InStream>`:
/// every delivery paid a red-black-tree walk and `for_each_in` scanned the
/// whole inbox to filter one kind. Here each message kind in use owns a
/// contiguous bucket kept sorted by (neighbour index, tag, version), so
///  - per-kind iteration touches exactly that kind's streams, in the same
///    deterministic (ni, key) order the old map produced (kind is fixed
///    within a bucket, so (ni, tag, version) order == (ni, StreamKey) order);
///  - lookups are a binary search in a small contiguous bucket;
///  - insertion (rare: first delivery of a stream) is a vector insert.
/// Protocol code observes identical iteration order, which the simulator's
/// bit-for-bit determinism guarantee depends on.
///
/// Buckets are allocated on first use through a 32-entry kind → slot map
/// instead of a static array of kMaxMsgKinds bucket headers: protocols use
/// around a third of the kind space, and the simulator's dominant cost is
/// cold misses on randomly-addressed per-node state (every delivery lands
/// on a different node). The slot map keeps sizeof(Inbox) at ~56 bytes, so
/// a node's whole hot state — counters, inbox header, link vector — packs
/// into a few cache lines instead of striding a ~2 KB struct. Slot order is
/// first-delivery order, which is internal layout only: every lookup goes
/// through the map, so nothing observable depends on it.
///
/// Each bucket is stored structure-of-arrays: a dense vector of 16-byte
/// packed (ni, tag, version) keys that the binary search strides, and a
/// parallel vector of the 80-byte InStream payloads indexed by the same
/// position. An AoS bucket (key embedded next to its stream) made every
/// search probe pull a ~100-byte element into cache and every insert shift
/// whole InStreams; splitting the keys out keeps four of them per cache
/// line, which matters because the two hottest operations in the whole
/// simulator — open() on each delivered message and find() on each
/// protocol-side poll — both funnel into this search.
///
/// Lookups are memoized per bucket (not one shared slot): deliveries within
/// a round arrive from ascending sources but alternate message kinds, and
/// protocol polls interleave kinds too, so a single memo would be evicted
/// on almost every call. Each kind's memo survives the others' traffic, and
/// both the memoized slot and its successor are tried before the binary
/// search — ascending neighbour-index access patterns (both the round's
/// delivery order and protocol poll loops) make the successor the common
/// case. Memos are validated by value, so a stale index can never change an
/// outcome.
///
/// Consumed-prefix skipping: each bucket keeps a cursor over its leading
/// entries that are *dead for this round* — drained (`available() == 0`)
/// and not closed — and `for_each` starts there, so a node polling a kind
/// every round does not rescan streams it has already drained. The cursor
/// only ever skips entries a visitor cannot act on: nothing to pop, and no
/// closed-stream signal (visitors that count finished streams — the tree
/// and component-announce phases — rely on closed entries staying visible,
/// so closed streams are never skipped). Deadness is monotone under
/// consumption (pops only drain further) and the one reviving event — a
/// delivery — goes through open(), which pulls the cursor back over the
/// revived entry.
///
/// Shard ownership (see network.hpp): an inbox belongs to its node's
/// shard. The deliver phase writes it from the destination shard's thread
/// and the wake phase reads it from the same thread, with a pool barrier
/// between the phases — the inbox itself needs no synchronization.
class Inbox {
 public:
  /// Stream from neighbour index `ni` with key `key`, or nullptr. Shares
  /// open()'s per-bucket memo (protocols poll the same streams every round).
  [[nodiscard]] InStream* find(std::size_t ni, const StreamKey& key) {
    const std::int8_t slot = slot_[check_kind(key.kind)];
    if (slot < 0) return nullptr;
    nc_invariant(static_cast<std::size_t>(slot) < store_.size(),
                 "inbox slot map points past the allocated buckets");
    Bucket& bucket = store_[static_cast<std::size_t>(slot)];
    const Key want = pack(ni, key);
    const std::size_t hit = probe(bucket, want);
    if (hit != kMiss) return &bucket.streams[hit];
    const std::size_t idx = lower_bound(bucket, want);
    if (idx == bucket.keys.size() || !(bucket.keys[idx] == want)) {
      return nullptr;
    }
    bucket.memo = static_cast<std::uint32_t>(idx);
    return &bucket.streams[idx];
  }

  /// Stream from `ni` with key `key`, created empty if absent (runtime use,
  /// on delivery).
  [[nodiscard]] InStream& open(std::size_t ni, const StreamKey& key) {
    Bucket& bucket = bucket_for(check_kind(key.kind));
    nc_invariant(bucket.keys.size() == bucket.streams.size(),
                 "inbox bucket key/stream columns out of sync");
    const Key want = pack(ni, key);
    std::size_t idx = probe(bucket, want);
    if (idx == kMiss) {
      idx = lower_bound(bucket, want);
      if (idx == bucket.keys.size() || !(bucket.keys[idx] == want)) {
        bucket.keys.insert(
            bucket.keys.begin() + static_cast<std::ptrdiff_t>(idx), want);
        bucket.streams.insert(
            bucket.streams.begin() + static_cast<std::ptrdiff_t>(idx),
            InStream{});
      }
      bucket.memo = static_cast<std::uint32_t>(idx);
    }
    // A delivery is about to land on this entry: if the dead-prefix cursor
    // had skipped past it, pull the cursor back so for_each sees the
    // revived stream again. (An insert below the cursor shifts live
    // entries into the prefix too — same fix.)
    if (idx < bucket.dead) {
      bucket.dead = static_cast<std::uint32_t>(idx);
    }
    return bucket.streams[idx];
  }

  /// Invokes `fn(ni, key, stream)` for every stream of `kind`, in ascending
  /// (ni, tag, version) order — starting past the bucket's consumed prefix
  /// (see the class comment; skipped entries are drained and unclosed, so
  /// no visitor behaviour changes).
  template <typename Fn>
  void for_each(std::uint16_t kind, Fn&& fn) {
    const std::int8_t slot = slot_[check_kind(kind)];
    if (slot < 0) return;
    Bucket& bucket = store_[static_cast<std::size_t>(slot)];
    nc_invariant(bucket.dead <= bucket.keys.size(),
                 "inbox dead-prefix cursor ran past the bucket");
    std::uint32_t dead = bucket.dead;
    while (dead < bucket.keys.size()) {
      const InStream& s = bucket.streams[dead];
      if (s.available() != 0 || s.closed()) break;
      ++dead;
    }
    bucket.dead = dead;
    for (std::size_t i = dead; i < bucket.keys.size(); ++i) {
      const Key k = bucket.keys[i];
      const StreamKey key{kind, static_cast<NodeId>(k.tv >> 16),
                          static_cast<std::uint16_t>(k.tv & 0xFFFFu)};
      fn(static_cast<std::size_t>(k.ni), key, bucket.streams[i]);
    }
  }

  /// Total streams stored (all kinds).
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& b : store_) total += b.keys.size();
    return total;
  }

 private:
  /// Packed (ni, tag, version) — 16 bytes, trivially comparable, and the
  /// (ni, tv) lexicographic order equals (ni, tag, version) order because
  /// tv concatenates tag above version.
  struct Key {
    std::uint64_t ni;
    std::uint64_t tv;  ///< tag << 16 | version

    friend bool operator==(const Key& a, const Key& b) noexcept {
      return a.ni == b.ni && a.tv == b.tv;
    }
    friend bool operator<(const Key& a, const Key& b) noexcept {
      return a.ni != b.ni ? a.ni < b.ni : a.tv < b.tv;
    }
  };

  struct Bucket {
    std::vector<Key> keys;
    std::vector<InStream> streams;  ///< parallel to keys

    /// Consumed-prefix cursor: entries [0 .. dead) are all drained-and-
    /// unclosed, so for_each starts at dead. Clamped back by open()
    /// whenever a delivery or insert lands inside the prefix.
    std::uint32_t dead = 0;

    /// Last-hit memo (see class comment); validated by value on every use,
    /// so it can never go stale in an observable way.
    std::uint32_t memo = 0;
  };

  static constexpr std::size_t kMiss = ~static_cast<std::size_t>(0);

  static Key pack(std::size_t ni, const StreamKey& key) noexcept {
    return Key{static_cast<std::uint64_t>(ni),
               (static_cast<std::uint64_t>(key.tag) << 16) | key.version};
  }

  static std::uint16_t check_kind(std::uint16_t kind) {
    if (kind >= kMaxMsgKinds) {
      throw std::invalid_argument("message kind out of range (>= 32)");
    }
    return kind;
  }

  /// The kind's bucket, allocated on first delivery.
  [[nodiscard]] Bucket& bucket_for(std::uint16_t kind) {
    std::int8_t slot = slot_[kind];
    if (slot < 0) {
      slot = static_cast<std::int8_t>(store_.size());
      slot_[kind] = slot;
      store_.emplace_back();
    }
    return store_[static_cast<std::size_t>(slot)];
  }

  /// Memo probe: the bucket's last-hit slot, then its successor (ascending
  /// access patterns). Returns the validated index or kMiss. Updates the
  /// memo on a successor hit.
  [[nodiscard]] static std::size_t probe(Bucket& bucket,
                                         const Key& want) noexcept {
    const std::size_t last = bucket.memo;
    if (last < bucket.keys.size() && bucket.keys[last] == want) return last;
    const std::size_t next = last + 1;
    if (next < bucket.keys.size() && bucket.keys[next] == want) {
      bucket.memo = static_cast<std::uint32_t>(next);
      return next;
    }
    return kMiss;
  }

  static std::size_t lower_bound(const Bucket& bucket, const Key& want) {
    return static_cast<std::size_t>(
        std::lower_bound(bucket.keys.begin(), bucket.keys.end(), want) -
        bucket.keys.begin());
  }

  /// kind → index into store_, -1 while the kind has never received.
  std::array<std::int8_t, kMaxMsgKinds> slot_ = init_slots();

  /// Buckets of the kinds in use, in first-delivery order.
  std::vector<Bucket> store_;

  static constexpr std::array<std::int8_t, kMaxMsgKinds> init_slots() {
    std::array<std::int8_t, kMaxMsgKinds> s{};
    for (auto& v : s) v = -1;
    return s;
  }
};

}  // namespace nc
