#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/stream.hpp"

namespace nc {

/// Flat, kind-bucketed store of a node's incoming streams.
///
/// The previous implementation was a `std::map<(ni, StreamKey), InStream>`:
/// every delivery paid a red-black-tree walk and `for_each_in` scanned the
/// whole inbox to filter one kind. Here each of the kMaxMsgKinds kinds owns a
/// contiguous vector kept sorted by (neighbour index, tag, version), so
///  - per-kind iteration touches exactly that kind's streams, in the same
///    deterministic (ni, key) order the old map produced (kind is fixed
///    within a bucket, so (ni, tag, version) order == (ni, StreamKey) order);
///  - lookups are a binary search in a small contiguous bucket;
///  - insertion (rare: first delivery of a stream) is a vector insert.
/// Protocol code observes identical iteration order, which the simulator's
/// bit-for-bit determinism guarantee depends on.
///
/// Shard ownership (see network.hpp): an inbox belongs to its node's
/// shard. The deliver phase writes it from the destination shard's thread
/// and the wake phase reads it from the same thread, with a pool barrier
/// between the phases — the inbox itself needs no synchronization.
class Inbox {
 public:
  /// Stream from neighbour index `ni` with key `key`, or nullptr. Shares
  /// open()'s last-hit memo (protocols poll the same stream every round).
  [[nodiscard]] InStream* find(std::size_t ni, const StreamKey& key) {
    const std::uint16_t kind = check_kind(key.kind);
    auto& bucket = buckets_[kind];
    if (kind == last_kind_ && last_idx_ < bucket.size()) {
      Entry& e = bucket[last_idx_];
      if (e.ni == ni && e.tag == key.tag && e.version == key.version) {
        return &e.stream;
      }
    }
    const auto it = lower_bound(bucket, ni, key);
    if (it == bucket.end() || it->ni != ni || it->tag != key.tag ||
        it->version != key.version) {
      return nullptr;
    }
    last_kind_ = kind;
    last_idx_ = static_cast<std::size_t>(it - bucket.begin());
    return &it->stream;
  }

  /// Stream from `ni` with key `key`, created empty if absent (runtime use,
  /// on delivery).
  ///
  /// Deliveries cluster: a multi-round stream hits the same (ni, key) every
  /// round, so the last successful lookup is memoized and revalidated by
  /// value before the binary search. The check is safe against intervening
  /// inserts and bucket reallocation — if the memoized slot no longer holds
  /// that exact entry, the comparison fails and the slow path runs.
  [[nodiscard]] InStream& open(std::size_t ni, const StreamKey& key) {
    const std::uint16_t kind = check_kind(key.kind);
    auto& bucket = buckets_[kind];
    if (kind == last_kind_ && last_idx_ < bucket.size()) {
      Entry& e = bucket[last_idx_];
      if (e.ni == ni && e.tag == key.tag && e.version == key.version) {
        return e.stream;
      }
    }
    auto it = lower_bound(bucket, ni, key);
    if (it == bucket.end() || it->ni != ni || it->tag != key.tag ||
        it->version != key.version) {
      it = bucket.insert(it, Entry{ni, key.tag, key.version, InStream{}});
    }
    last_kind_ = kind;
    last_idx_ = static_cast<std::size_t>(it - bucket.begin());
    return it->stream;
  }

  /// Invokes `fn(ni, key, stream)` for every stream of `kind`, in ascending
  /// (ni, tag, version) order.
  template <typename Fn>
  void for_each(std::uint16_t kind, Fn&& fn) {
    for (auto& e : buckets_[check_kind(kind)]) {
      const StreamKey key{kind, e.tag, e.version};
      fn(e.ni, key, e.stream);
    }
  }

  /// Total streams stored (all kinds).
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b.size();
    return total;
  }

 private:
  struct Entry {
    std::size_t ni;
    NodeId tag;
    std::uint16_t version;
    InStream stream;
  };

  static std::uint16_t check_kind(std::uint16_t kind) {
    if (kind >= kMaxMsgKinds) {
      throw std::invalid_argument("message kind out of range (>= 32)");
    }
    return kind;
  }

  static std::vector<Entry>::iterator lower_bound(std::vector<Entry>& bucket,
                                                  std::size_t ni,
                                                  const StreamKey& key) {
    return std::lower_bound(
        bucket.begin(), bucket.end(), Entry{ni, key.tag, key.version, {}},
        [](const Entry& a, const Entry& b) {
          if (a.ni != b.ni) return a.ni < b.ni;
          if (a.tag != b.tag) return a.tag < b.tag;
          return a.version < b.version;
        });
  }

  std::array<std::vector<Entry>, kMaxMsgKinds> buckets_;

  // open()'s last-hit memo; revalidated by value, so it can never go stale
  // in an observable way (kMaxMsgKinds is an impossible kind == no memo).
  std::uint16_t last_kind_ = kMaxMsgKinds;
  std::size_t last_idx_ = 0;
};

}  // namespace nc
