#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Maximum number of shards a network is split into. The staging lanes form
/// a shards x shards matrix, so the count is capped well below anything a
/// real machine would ask for; NetConfig::threads above the cap is clamped.
inline constexpr unsigned kMaxShards = 256;

/// A contiguous partition of a graph's nodes into `shards()` ID ranges,
/// balanced by directed-edge count (plus one unit per node, so isolated
/// nodes spread too). Contiguity is what makes the sharded simulator's
/// merge order equal the global ascending-edge order: concatenating the
/// shards' sorted active sets in shard order IS the sorted global active
/// set, for every shard count. Shards may be empty (n < k).
struct ShardPlan {
  /// shards()+1 node offsets: shard s owns nodes [bounds[s], bounds[s+1]).
  std::vector<NodeId> bounds;

  /// Owning shard per node (n entries), precomputed for O(1) hot-path
  /// lookups (destination-lane selection, alarm/done bookkeeping).
  std::vector<std::uint32_t> node_shard;

  [[nodiscard]] unsigned shards() const noexcept {
    return bounds.empty() ? 0 : static_cast<unsigned>(bounds.size() - 1);
  }
  [[nodiscard]] NodeId begin(unsigned s) const noexcept { return bounds[s]; }
  [[nodiscard]] NodeId end(unsigned s) const noexcept {
    return bounds[s + 1];
  }
};

/// Partitions `g`'s nodes into `k` contiguous shards balanced by
/// weight(v) = degree(v) + 1. Deterministic: depends only on (g, k).
/// `k` is clamped to [1, kMaxShards].
ShardPlan plan_shards(const Graph& g, unsigned k);

/// Fixed pool of `threads - 1` workers plus the calling thread, dispatching
/// job indices [0, jobs) with an atomic cursor and barrier-waiting for all
/// of them — the simulator's phase executor. With threads <= 1 (or a
/// single job) everything runs inline on the caller, so a 1-shard network
/// never pays for synchronization. The first exception a job throws is
/// captured and rethrown from run() after the barrier.
class ShardPool {
 public:
  explicit ShardPool(unsigned threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Runs fn(0), ..., fn(jobs - 1) across the pool and the calling thread;
  /// returns when every job finished. Jobs must not touch shared mutable
  /// state (the simulator's phases hand each job its own shard — including
  /// the shard's bump arena and the SoA staging lanes it writes; see the
  /// shard-owned/shared inventory in runtime/README.md).
  void run(unsigned jobs, const std::function<void(unsigned)>& fn);

  /// Workers spawned (0 = everything runs inline).
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  /// One run()'s state. Heap-allocated per run and shared with the workers
  /// that join it, so a worker still draining an old run can never claim a
  /// job of (or race with) a newer one: it only ever touches the state it
  /// was handed under the mutex.
  struct RunState {
    std::atomic<unsigned> next{0};           ///< claim cursor
    unsigned count = 0;                      ///< total jobs
    const std::function<void(unsigned)>* fn = nullptr;
    unsigned pending = 0;                    ///< guarded by the pool mutex
    std::exception_ptr first_error;          ///< guarded by the pool mutex
  };

  void worker_loop();
  void work(RunState& state);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<RunState> current_;  ///< guarded by the pool mutex
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace nc
