#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/ids.hpp"

namespace nc {

/// Identifies a logical stream of symbols between two adjacent nodes.
///
/// `kind` is a protocol-defined message kind (goes on the wire in 5 bits),
/// `tag` is protocol context — almost always the ID of the component root the
/// stream belongs to (id_width(n) bits on the wire) — and `version` is the
/// boosting version index of Section 4.1 (4 bits on the wire, so up to 16
/// interleaved versions).
struct StreamKey {
  std::uint16_t kind = 0;
  NodeId tag = 0;
  std::uint16_t version = 0;

  auto operator<=>(const StreamKey&) const = default;
};

/// Number of distinct message kinds the wire format supports. The stream
/// header encodes the kind in 5 bits (see stream_header_bits), so kinds are
/// restricted to [0, 32): the runtime's fixed-size per-kind tables
/// (RunStats::bits_by_kind, rx counters, inbox buckets) are sized by this
/// and NodeApi::open_stream rejects anything out of range instead of
/// silently aliasing counters.
inline constexpr std::uint16_t kMaxMsgKinds = 32;

/// Number of distinct stream versions the wire format supports: the header
/// encodes the boosting version index in 4 bits, so versions live in
/// [0, 16). NodeApi::open_stream rejects anything out of range — versions
/// 16 and 0 would alias on the wire and the header accounting would
/// undercharge.
inline constexpr std::uint16_t kMaxStreamVersions = 16;

/// Number of header bits a physical message spends identifying its stream:
/// kind (5) + tag (id bits) + version (4) + end-of-stream flag (1).
/// FIFO links neither lose nor reorder, so no sequence number is needed.
unsigned stream_header_bits(unsigned id_bits) noexcept;

/// Append-only packed buffer of variable-width symbols.
///
/// A symbol is an unsigned value together with its width in bits; the width
/// is what the CONGEST accountant charges for it. Buffers are immutable once
/// handed to the runtime and may be shared among many outgoing links (a
/// broadcast writes its payload once). Reading is strictly sequential via
/// SymbolCursor.
class SymbolBuffer {
 public:
  /// Appends a symbol of `width` bits (1..64). Precondition: value < 2^width.
  void put(std::uint64_t value, unsigned width);

  /// Appends a single bit.
  void put_bit(bool b) { put(b ? 1 : 0, 1); }

  /// Number of symbols stored.
  [[nodiscard]] std::size_t size() const noexcept { return widths_.size(); }

  /// Total payload width in bits.
  [[nodiscard]] std::size_t bit_size() const noexcept { return total_bits_; }

  /// Width of the idx-th symbol.
  [[nodiscard]] unsigned width_at(std::size_t idx) const noexcept {
    return widths_[idx];
  }

  /// Value of the symbol starting at bit offset `bit_off` with given width.
  /// (Sequential readers track offsets themselves; see SymbolCursor.)
  [[nodiscard]] std::uint64_t value_at(std::size_t bit_off,
                                       unsigned width) const noexcept;

  /// Raw packed words (little-endian bit order within each word). With
  /// word_count() and widths(), lets the runtime's SoA lanes blit symbol
  /// runs in 64-bit chunks instead of re-packing symbol by symbol.
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  [[nodiscard]] const std::uint8_t* widths() const noexcept {
    return widths_.data();
  }

  /// Bulk append: copies `count` symbols totalling `nbits` payload bits out
  /// of another packed word array, starting at bit `src_bit`. Produces the
  /// exact buffer a sequence of put() calls with the same values/widths
  /// would — the deliver path uses it to move a whole message in word-sized
  /// chunks.
  void append_packed(const std::uint64_t* src_words, std::size_t src_word_count,
                     std::size_t src_bit, std::size_t nbits,
                     const std::uint8_t* widths, std::size_t count);

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint8_t> widths_;
  std::size_t total_bits_ = 0;
};

/// Reads `take` (1..64) bits starting at absolute bit `bit` from a packed
/// word array. `word_count` guards the straddling read at the array's end.
[[nodiscard]] inline std::uint64_t read_packed_bits(
    const std::uint64_t* words, std::size_t word_count, std::size_t bit,
    unsigned take) noexcept {
  const std::size_t word = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  std::uint64_t v = words[word] >> off;
  if (off != 0 && word + 1 < word_count) v |= words[word + 1] << (64 - off);
  if (take < 64) v &= (1ULL << take) - 1;
  return v;
}

/// Sequential reader over a (possibly still growing) SymbolBuffer.
class SymbolCursor {
 public:
  SymbolCursor() = default;
  explicit SymbolCursor(std::shared_ptr<const SymbolBuffer> buf)
      : buf_(std::move(buf)) {}

  /// Symbols left to read.
  [[nodiscard]] std::size_t available() const noexcept {
    return buf_ ? buf_->size() - index_ : 0;
  }

  /// Reads the next symbol value (advances). Precondition: available() > 0.
  std::uint64_t pop() noexcept;

  /// Width of the next symbol. Precondition: available() > 0.
  [[nodiscard]] unsigned peek_width() const noexcept {
    return buf_->width_at(index_);
  }

 private:
  std::shared_ptr<const SymbolBuffer> buf_;
  std::size_t index_ = 0;
  std::size_t bit_off_ = 0;
};

}  // namespace nc
