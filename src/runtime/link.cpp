#include "runtime/link.hpp"

#include <stdexcept>

namespace nc {

void Link::add_stream(const StreamKey& key,
                      std::shared_ptr<const OutStreamState> state) {
  streams_.push_back(ActiveStream{key, std::move(state), 0, 0, false});
}

bool Link::has_pending() const noexcept {
  for (const auto& s : streams_) {
    if (s.pending()) return true;
  }
  return false;
}

void Link::prune_done() {
  // Streams whose EOS has been delivered can never carry traffic again;
  // dropping them keeps per-round scheduling proportional to *active*
  // streams (long executions accumulate thousands of finished one-shot
  // streams otherwise) and releases their shared payload buffers.
  if (!any_done_) return;
  any_done_ = false;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (!streams_[i].eos_done) {
      if (kept != i) streams_[kept] = std::move(streams_[i]);
      ++kept;
    }
  }
  if (kept != streams_.size()) {
    streams_.resize(kept);
    rr_pos_ = streams_.empty() ? 0 : rr_pos_ % streams_.size();
  }
}

std::size_t Link::pick_pending() {
  prune_done();
  const std::size_t count = streams_.size();
  for (std::size_t step = 0; step < count; ++step) {
    const std::size_t i = (rr_pos_ + step) % count;
    if (streams_[i].pending()) return i;
  }
  return count;
}

bool Link::schedule_matches(std::size_t budget_bits, unsigned header_bits,
                            const MsgView& prev) {
  const std::size_t chosen = pick_pending();
  if (chosen == streams_.size()) return false;
  ActiveStream& s = streams_[chosen];
  // Identical shared buffer + identical cursor + identical budget means the
  // packing loop below (schedule_view) would reproduce prev symbol for
  // symbol, so the whole walk collapses to a cursor advance. The key check
  // is belt-and-braces: one OutStreamState is only ever registered by one
  // open_stream call, which uses one key for every sibling link.
  if (&s.state->buf != prev.buf || s.next_symbol != prev.first_symbol ||
      s.bit_off != prev.bit_off || !(s.key == prev.key) || s.eos_done) {
    return false;
  }
  // prev was produced under the same (budget_bits, header_bits) by contract;
  // the parameters exist so a future non-uniform-budget engine cannot
  // silently misuse the fast path.
  (void)budget_bits;
  (void)header_bits;
  rr_pos_ = (chosen + 1) % streams_.size();
  s.next_symbol += prev.symbol_count;
  s.bit_off += prev.bit_len;
  if (prev.eos) {
    s.eos_done = true;
    any_done_ = true;
  }
  return true;
}

bool Link::schedule_view(std::size_t budget_bits, unsigned header_bits,
                         MsgView& out) {
  const std::size_t chosen = pick_pending();
  if (chosen == streams_.size()) return false;
  const std::size_t count = streams_.size();
  rr_pos_ = (chosen + 1) % count;

  ActiveStream& s = streams_[chosen];
  out.key = s.key;
  out.buf = &s.state->buf;
  out.first_symbol = s.next_symbol;
  out.symbol_count = 0;
  out.bit_off = s.bit_off;
  out.bit_len = 0;
  out.eos = false;
  out.wire_bits = header_bits;
  if (budget_bits < header_bits) {
    throw std::runtime_error(
        "CONGEST violation: bandwidth smaller than stream header");
  }
  const std::uint8_t* widths = s.state->buf.widths();
  const std::size_t total = s.state->buf.size();
  std::size_t room = budget_bits - header_bits;
  while (s.next_symbol < total) {
    const unsigned w = widths[s.next_symbol];
    if (w > room) {
      if (out.symbol_count == 0 && w > budget_bits - header_bits) {
        throw std::runtime_error(
            "CONGEST violation: symbol wider than message budget");
      }
      break;
    }
    ++out.symbol_count;
    out.bit_len += w;
    out.wire_bits += w;
    room -= w;
    s.bit_off += w;
    ++s.next_symbol;
  }
  // EOS piggybacks once the stream is fully drained and producer closed it.
  if (s.state->closed && s.pending_symbols() == 0 && !s.eos_done) {
    out.eos = true;
    s.eos_done = true;
    any_done_ = true;
  }
  if (out.symbol_count == 0 && !out.eos) {
    // Nothing fit (symbol wider than remaining room can't happen with empty
    // payload — handled above) or state raced; treat as idle.
    return false;
  }
  // Pruning is the caller's job (release_idle) — it would invalidate the
  // view we just handed out.
  return true;
}

namespace {

// Materializes a view into the legacy symbol-vector form (wrapper paths).
void copy_view(const MsgView& v, Delivery& out) {
  out.key = v.key;
  out.symbols.clear();
  out.eos = v.eos;
  out.wire_bits = v.wire_bits;
  std::size_t bit = v.bit_off;
  for (std::size_t i = 0; i < v.symbol_count; ++i) {
    const unsigned w = v.buf->width_at(v.first_symbol + i);
    out.symbols.emplace_back(v.buf->value_at(bit, w),
                             static_cast<std::uint8_t>(w));
    bit += w;
  }
}

}  // namespace

bool Link::schedule_into(std::size_t budget_bits, unsigned header_bits,
                         Delivery& out) {
  MsgView v;
  if (!schedule_view(budget_bits, header_bits, v)) return false;
  copy_view(v, out);
  // The link just went idle: release finished streams now, since an
  // event-driven simulator will not touch this link again until new traffic
  // appears (the old per-round scan pruned as a side effect).
  release_idle();
  return true;
}

std::size_t Link::pending_stream_count() const noexcept {
  std::size_t count = 0;
  for (const auto& s : streams_) {
    if (s.pending()) ++count;
  }
  return count;
}

std::optional<Delivery> Link::schedule(std::size_t budget_bits,
                                       unsigned header_bits) {
  Delivery d;
  if (!schedule_into(budget_bits, header_bits, d)) return std::nullopt;
  return d;
}

std::size_t Link::drain_all_into(unsigned header_bits,
                                 std::vector<Delivery>& out) {
  const std::size_t appended = drain_views(header_bits, [&](const MsgView& v) {
    Delivery d;
    copy_view(v, d);
    out.push_back(std::move(d));
  });
  if (appended > 0) release_idle();
  return appended;
}

std::optional<std::vector<Delivery>> Link::drain_all(unsigned header_bits) {
  std::vector<Delivery> out;
  if (drain_all_into(header_bits, out) == 0) return std::nullopt;
  return out;
}

}  // namespace nc
