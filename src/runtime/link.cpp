#include "runtime/link.hpp"

#include <stdexcept>

namespace nc {

void Link::add_stream(const StreamKey& key,
                      std::shared_ptr<const SymbolBuffer> buf,
                      std::shared_ptr<const bool> closed) {
  streams_.push_back(
      ActiveStream{key, std::move(buf), std::move(closed), 0, 0, false});
}

bool Link::has_pending() const noexcept {
  for (const auto& s : streams_) {
    if (s.pending()) return true;
  }
  return false;
}

void Link::prune_done() {
  // Streams whose EOS has been delivered can never carry traffic again;
  // dropping them keeps per-round scheduling proportional to *active*
  // streams (long executions accumulate thousands of finished one-shot
  // streams otherwise).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (!streams_[i].eos_needed_done) {
      if (kept != i) streams_[kept] = std::move(streams_[i]);
      ++kept;
    }
  }
  if (kept != streams_.size()) {
    streams_.resize(kept);
    rr_pos_ = streams_.empty() ? 0 : rr_pos_ % streams_.size();
  }
}

std::optional<Delivery> Link::schedule(std::size_t budget_bits,
                                       unsigned header_bits) {
  prune_done();
  if (streams_.empty()) return std::nullopt;
  // Round-robin: find the next stream with pending work.
  const std::size_t count = streams_.size();
  std::size_t chosen = count;
  for (std::size_t step = 0; step < count; ++step) {
    const std::size_t i = (rr_pos_ + step) % count;
    if (streams_[i].pending()) {
      chosen = i;
      break;
    }
  }
  if (chosen == count) return std::nullopt;
  rr_pos_ = (chosen + 1) % count;

  ActiveStream& s = streams_[chosen];
  Delivery d;
  d.key = s.key;
  d.wire_bits = header_bits;
  if (budget_bits < header_bits) {
    throw std::runtime_error(
        "CONGEST violation: bandwidth smaller than stream header");
  }
  std::size_t room = budget_bits - header_bits;
  while (s.pending_symbols() > 0) {
    const unsigned w = s.buf->width_at(s.next_symbol);
    if (w > room) {
      if (d.symbols.empty() && w > budget_bits - header_bits) {
        throw std::runtime_error(
            "CONGEST violation: symbol wider than message budget");
      }
      break;
    }
    d.symbols.emplace_back(s.buf->value_at(s.bit_off, w),
                           static_cast<std::uint8_t>(w));
    d.wire_bits += w;
    room -= w;
    s.bit_off += w;
    ++s.next_symbol;
  }
  // EOS piggybacks once the stream is fully drained and producer closed it.
  if (*s.closed && s.pending_symbols() == 0 && !s.eos_needed_done) {
    d.eos = true;
    s.eos_needed_done = true;
  }
  if (d.symbols.empty() && !d.eos) {
    // Nothing fit (symbol wider than remaining room can't happen with empty
    // payload — handled above) or state raced; treat as idle.
    return std::nullopt;
  }
  return d;
}

std::optional<std::vector<Delivery>> Link::drain_all(unsigned header_bits) {
  std::vector<Delivery> out;
  for (auto& s : streams_) {
    if (!s.pending()) continue;
    Delivery d;
    d.key = s.key;
    d.wire_bits = header_bits;
    while (s.pending_symbols() > 0) {
      const unsigned w = s.buf->width_at(s.next_symbol);
      d.symbols.emplace_back(s.buf->value_at(s.bit_off, w),
                             static_cast<std::uint8_t>(w));
      d.wire_bits += w;
      s.bit_off += w;
      ++s.next_symbol;
    }
    if (*s.closed && !s.eos_needed_done) {
      d.eos = true;
      s.eos_needed_done = true;
    }
    out.push_back(std::move(d));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace nc
