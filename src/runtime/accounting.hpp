#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace nc {

/// Traffic and progress measurements for one simulated execution.
///
/// These are the quantities the paper's complexity statements bound:
/// `rounds` for Lemma 5.1 / Theorem 5.7, `max_message_bits` for the CONGEST
/// O(log n) message-size guarantee, and the per-kind bit breakdown for the
/// stage analysis in the appendix proof of Lemma 5.1.
struct RunStats {
  std::uint64_t rounds = 0;            ///< rounds actually executed
  std::uint64_t messages = 0;          ///< physical messages delivered
  std::uint64_t bits = 0;              ///< total wire bits (headers included)
  std::uint64_t max_message_bits = 0;  ///< largest single message
  bool hit_round_limit = false;        ///< aborted by the time-bound wrapper
  bool stalled = false;                ///< protocol deadlock (bug guard)
  std::map<std::uint16_t, std::uint64_t> bits_by_kind;  ///< per message kind

  /// Merges another run's counters into this one (used by multi-phase
  /// drivers that restart the network, e.g. the boosting wrapper).
  void absorb(const RunStats& other);

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace nc
