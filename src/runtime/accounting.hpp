#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "runtime/message.hpp"

namespace nc {

/// Traffic and progress measurements for one simulated execution.
///
/// These are the quantities the paper's complexity statements bound:
/// `rounds` for Lemma 5.1 / Theorem 5.7, `max_message_bits` for the CONGEST
/// O(log n) message-size guarantee, and the per-kind bit breakdown for the
/// stage analysis in the appendix proof of Lemma 5.1.
struct RunStats {
  std::uint64_t rounds = 0;            ///< rounds actually executed
  std::uint64_t messages = 0;          ///< physical messages delivered
  std::uint64_t bits = 0;              ///< total wire bits (headers included)
  std::uint64_t max_message_bits = 0;  ///< largest single message
  bool hit_round_limit = false;        ///< aborted by the time-bound wrapper
  bool stalled = false;                ///< protocol deadlock (bug guard)

  /// Wire bits per message kind, indexed by kind. A fixed array (not a map):
  /// kinds are bounded by the 5-bit header field, the hot path increments a
  /// slot per delivery, and the layout matches the runtime's rx counters.
  std::array<std::uint64_t, kMaxMsgKinds> bits_by_kind{};

  /// Merges another run's counters into this one (used by multi-phase
  /// drivers that restart the network, e.g. the boosting wrapper).
  void absorb(const RunStats& other);

  /// Merges only the traffic counters (messages, bits, max message size,
  /// per-kind bits) — the sharded delivery engine's end-of-round reduction
  /// of per-shard partials. Rounds and the termination flags are global
  /// facts owned by the round loop, so they are deliberately not touched.
  /// Sums and maxes commute exactly over the integers, which is why the
  /// reduction is bit-identical to serial accumulation at any shard count.
  void merge_traffic(const RunStats& other);

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace nc
