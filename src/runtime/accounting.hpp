#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "runtime/message.hpp"

namespace nc {

class JsonWriter;

/// Traffic and progress measurements for one simulated execution.
///
/// These are the quantities the paper's complexity statements bound:
/// `rounds` for Lemma 5.1 / Theorem 5.7, `max_message_bits` for the CONGEST
/// O(log n) message-size guarantee, and the per-kind bit breakdown for the
/// stage analysis in the appendix proof of Lemma 5.1.
struct RunStats {
  std::uint64_t rounds = 0;            ///< rounds actually executed
  std::uint64_t messages = 0;          ///< physical messages delivered
  std::uint64_t bits = 0;              ///< total wire bits (headers included)
  std::uint64_t max_message_bits = 0;  ///< largest single message
  bool hit_round_limit = false;        ///< aborted by the time-bound wrapper
  bool stalled = false;                ///< protocol deadlock (bug guard)

  // Fault-engine accounting (src/runtime/faults.hpp; all zero in clean
  // runs). Lost and crash-silenced messages are counted here and *not* in
  // messages/bits — those track what was actually delivered. A deferral
  // is charged to messages_delayed when the message is scheduled; it then
  // normally also lands in messages on arrival, unless the receiver
  // crashes while it rides, in which case the arrival is charged to
  // messages_dropped_crash instead (the counters are per-pipeline-point
  // event counts, not a partition of scheduled traffic).
  std::uint64_t messages_lost = 0;          ///< dropped by the loss models
  std::uint64_t messages_delayed = 0;       ///< deferred by link delay
  std::uint64_t messages_dropped_crash = 0; ///< silenced by node churn
  std::uint64_t crash_events = 0;           ///< nodes that crashed
  std::uint64_t recover_events = 0;         ///< nodes that recovered

  // Reliability-service accounting (src/runtime/reliability.hpp; all zero
  // when the service is off). With reliability on, messages_lost counts
  // only *permanent* losses (retransmit budget exhausted / FEC window
  // unrecovered); a message the service recovers lands in messages like
  // any other delivery. Duplicate data copies and delivered control
  // traffic (ACKs, repair chunks) are charged into bits / bits_by_kind —
  // the wire carried them — but not into messages, which stays the count
  // of protocol-visible deliveries.
  std::uint64_t messages_retransmitted = 0; ///< ARQ resend attempts
  std::uint64_t acks_sent = 0;              ///< ARQ ACKs transmitted
  std::uint64_t fec_repairs = 0;            ///< FEC repair chunks sent

  /// Wire bits per message kind, indexed by kind. A fixed array (not a map):
  /// kinds are bounded by the 5-bit header field, the hot path increments a
  /// slot per delivery, and the layout matches the runtime's rx counters.
  std::array<std::uint64_t, kMaxMsgKinds> bits_by_kind{};

  /// Merges another run's counters into this one (used by multi-phase
  /// drivers that restart the network, e.g. the boosting wrapper).
  void absorb(const RunStats& other);

  /// Merges only the traffic counters (messages, bits, max message size,
  /// per-kind bits) — the sharded delivery engine's end-of-round reduction
  /// of per-shard partials. Rounds and the termination flags are global
  /// facts owned by the round loop, so they are deliberately not touched.
  /// Sums and maxes commute exactly over the integers, which is why the
  /// reduction is bit-identical to serial accumulation at any shard count.
  void merge_traffic(const RunStats& other);

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;

  /// Complete JSON object (begin_object .. end_object) via util/json — the
  /// single source of stats field names for `nearclique run --json`, the
  /// telemetry metrics dump and the stall post-mortem, so schemas cannot
  /// drift apart.
  void to_json(JsonWriter& w) const;
};

/// Per-phase batch of traffic charges. The deliver phase charges every
/// message into one of these (a handful of register-resident counters) and
/// flushes into the shard's RunStats partial once per phase — instead of
/// five read-modify-writes against the shard struct per message. Sums and
/// maxes commute exactly over the integers, so batching is invisible in the
/// final statistics.
struct TrafficBatch {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_message_bits = 0;
  std::array<std::uint64_t, kMaxMsgKinds> bits_by_kind{};

  void charge(std::uint16_t kind, std::uint64_t wire_bits) noexcept {
    messages += 1;
    bits += wire_bits;
    if (wire_bits > max_message_bits) max_message_bits = wire_bits;
    bits_by_kind[kind] += wire_bits;
  }

  void flush_into(RunStats& stats) const noexcept {
    stats.messages += messages;
    stats.bits += bits;
    if (max_message_bits > stats.max_message_bits) {
      stats.max_message_bits = max_message_bits;
    }
    for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
      stats.bits_by_kind[k] += bits_by_kind[k];
    }
  }
};

/// Engine-internals profile of one Network's lifetime, opt-in via
/// NetConfig::profile (nullptr, the default, costs the hot path nothing).
/// The bench artifacts publish these so a perf regression is attributable
/// to a phase and a memory footprint, not just a headline rate
/// (docs/benchmarks.md documents the JSON fields).
struct NetProfile {
  double stage_seconds = 0.0;    ///< wall-clock in the stage phase (staged engine)
  double deliver_seconds = 0.0;  ///< deliver phase (staged engine)
  double fused_seconds = 0.0;    ///< fused stage+deliver pass (1-thread clean
                                 ///< runs; its stage and deliver work are
                                 ///< inseparable without a per-edge clock
                                 ///< read, so it is booked as its own phase)
  double wake_seconds = 0.0;     ///< wake phase (protocol callbacks)

  /// Arena accounting: sum and per-shard max of the shard arenas'
  /// high-water marks (bytes of per-round transient storage).
  std::uint64_t arena_bytes_total = 0;
  std::uint64_t arena_bytes_peak_shard = 0;

  /// Peak messages staged by one shard in one round, and peak in-flight
  /// delayed messages held by one shard (fault runs only).
  std::uint64_t lane_msgs_peak = 0;
  std::uint64_t delayed_msgs_peak = 0;

  /// Payload bytes the staged engine did not copy into lanes because
  /// broadcast dedup fanned an already-staged row out to another receiver
  /// (NetConfig::broadcast_dedup). The fused 1-thread path delivers
  /// straight from the producer buffer — it has no lane copies to save —
  /// so this stays 0 there by construction.
  std::uint64_t broadcast_payload_bytes_saved = 0;

  /// Accumulates another profile (multi-trial benches).
  void absorb(const NetProfile& other);
};

}  // namespace nc
