#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/stream.hpp"

namespace nc {

/// One physical message scheduled on a directed edge in one round.
struct Delivery {
  StreamKey key;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> symbols;  // value,width
  bool eos = false;
  std::size_t wire_bits = 0;  // header + payload, what the accountant charges
};

/// Outbound side of one directed edge.
///
/// Holds the set of active streams and schedules at most one message per
/// round: the scheduler walks the streams round-robin (so concurrent
/// components and boosting versions share the edge fairly, and no stream is
/// starved), packs as many pending symbols of the chosen stream as fit into
/// the bit budget, and piggybacks the EOS flag when the stream is drained
/// and closed. FIFO order within a stream is preserved by construction.
///
/// Shard ownership (see network.hpp): a link belongs to its *owner's*
/// (source node's) shard. Stream registration happens in the owner's
/// callbacks and scheduling in the owner shard's stage phase, so a link is
/// only ever touched by one thread and needs no synchronization.
class Link {
 public:
  /// Registers a stream on this edge. The state (payload + closed flag) is
  /// shared with the producer's OutChannel (and possibly sibling links).
  void add_stream(const StreamKey& key,
                  std::shared_ptr<const OutStreamState> state);

  /// True if any stream has undelivered symbols or an undelivered EOS.
  [[nodiscard]] bool has_pending() const noexcept;

  /// Schedules one message within `budget_bits` total (header included) into
  /// `out`, reusing its symbol buffer (the simulator keeps one scratch
  /// Delivery, so the hot path performs no per-message allocation). Returns
  /// false when nothing is pending. Throws std::runtime_error if a single
  /// symbol cannot fit even in an otherwise empty message (CONGEST violation
  /// — the protocol used a symbol wider than the model allows).
  bool schedule_into(std::size_t budget_bits, unsigned header_bits,
                     Delivery& out);

  /// Convenience wrapper returning a fresh Delivery (tests, LOCAL-mode-free
  /// callers).
  std::optional<Delivery> schedule(std::size_t budget_bits,
                                   unsigned header_bits);

  /// Removes streams whose EOS has been delivered (internal housekeeping;
  /// called by the schedulers).
  void prune_done();

  /// Drains *all* pending streams into `out`, one unbounded message per
  /// stream — the LOCAL model of Peleg [20], used by the
  /// neighbours-of-neighbours baseline. Returns the number of deliveries
  /// appended.
  std::size_t drain_all_into(unsigned header_bits, std::vector<Delivery>& out);

  /// Convenience wrapper for drain_all_into.
  std::optional<std::vector<Delivery>> drain_all(unsigned header_bits);

  /// Number of attached (not yet pruned) streams.
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }

 private:
  struct ActiveStream {
    StreamKey key;
    std::shared_ptr<const OutStreamState> state;
    std::size_t next_symbol = 0;
    std::size_t bit_off = 0;
    bool eos_done = false;  // EOS already delivered

    [[nodiscard]] std::size_t pending_symbols() const noexcept {
      return state->buf.size() - next_symbol;
    }
    [[nodiscard]] bool pending() const noexcept {
      return pending_symbols() > 0 || (state->closed && !eos_done);
    }
  };

  std::vector<ActiveStream> streams_;
  std::size_t rr_pos_ = 0;
};

}  // namespace nc
