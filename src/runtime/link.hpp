#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/stream.hpp"

namespace nc {

/// One physical message scheduled on a directed edge in one round.
struct Delivery {
  StreamKey key;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> symbols;  // value,width
  bool eos = false;
  std::size_t wire_bits = 0;  // header + payload, what the accountant charges
};

/// Zero-copy description of one scheduled message: a symbol run inside the
/// producer's shared payload buffer. This is what the hot path hands to the
/// staging lanes — the payload is copied exactly once, straight into the
/// lane's packed words (src/runtime/msgblock.hpp), never into a per-message
/// symbol vector.
///
/// Lifetime: the view borrows `buf` from the link's stream state. It is
/// valid until the link's streams are pruned — consume it before calling
/// release_idle() (the schedulers below never prune while a view is out).
struct MsgView {
  StreamKey key;
  const SymbolBuffer* buf = nullptr;  ///< null only when symbol_count == 0
  std::size_t first_symbol = 0;       ///< index of the run's first symbol
  std::size_t symbol_count = 0;
  std::size_t bit_off = 0;   ///< bit offset of the run's first symbol in buf
  std::size_t bit_len = 0;   ///< total payload bits in the run
  bool eos = false;
  std::size_t wire_bits = 0;  ///< header + payload
};

/// Outbound side of one directed edge.
///
/// Holds the set of active streams and schedules at most one message per
/// round: the scheduler walks the streams round-robin (so concurrent
/// components and boosting versions share the edge fairly, and no stream is
/// starved), packs as many pending symbols of the chosen stream as fit into
/// the bit budget, and piggybacks the EOS flag when the stream is drained
/// and closed. FIFO order within a stream is preserved by construction.
///
/// Shard ownership (see network.hpp): a link belongs to its *owner's*
/// (source node's) shard. Stream registration happens in the owner's
/// callbacks and scheduling in the owner shard's stage phase, so a link is
/// only ever touched by one thread and needs no synchronization.
class Link {
 public:
  /// Registers a stream on this edge. The state (payload + closed flag) is
  /// shared with the producer's OutChannel (and possibly sibling links).
  void add_stream(const StreamKey& key,
                  std::shared_ptr<const OutStreamState> state);

  /// True if any stream has undelivered symbols or an undelivered EOS.
  [[nodiscard]] bool has_pending() const noexcept;

  /// Schedules one message within `budget_bits` total (header included) as a
  /// zero-copy view into the chosen stream's shared payload buffer. The
  /// stream advances (its symbols count as sent); the caller must consume
  /// the view — copy it into a lane or deliver it — before release_idle().
  /// Returns false when nothing is pending. Throws std::runtime_error if a
  /// single symbol cannot fit even in an otherwise empty message (CONGEST
  /// violation — the protocol used a symbol wider than the model allows).
  bool schedule_view(std::size_t budget_bits, unsigned header_bits,
                     MsgView& out);

  /// Broadcast classification: true iff this link's next scheduled message
  /// would be byte-identical to `prev` (same shared payload buffer, same
  /// key, same symbol cursor, same EOS), in which case the stream is
  /// advanced exactly as schedule_view would have — without re-running the
  /// per-symbol packing loop, because identical (buffer, cursor, budget)
  /// inputs make packing deterministic. On false nothing advances and the
  /// caller falls back to schedule_view. This is how the stage phase
  /// detects that sibling links of one open_stream_all share the identical
  /// remaining view: the links share one OutStreamState, and their cursors
  /// coincide exactly when they have drained in lockstep — the invariant
  /// every (budget-uniform) CONGEST round preserves.
  bool schedule_matches(std::size_t budget_bits, unsigned header_bits,
                        const MsgView& prev);

  /// Copying wrapper around schedule_view (tests and compatibility callers):
  /// materializes the view into `out`'s symbol vector and end-prunes.
  bool schedule_into(std::size_t budget_bits, unsigned header_bits,
                     Delivery& out);

  /// Convenience wrapper returning a fresh Delivery (tests, LOCAL-mode-free
  /// callers).
  std::optional<Delivery> schedule(std::size_t budget_bits,
                                   unsigned header_bits);

  /// Removes streams whose EOS has been delivered (internal housekeeping;
  /// called by the schedulers).
  void prune_done();

  /// Releases finished streams once the link has gone idle. The view
  /// schedulers leave pruning to the caller (a prune would invalidate the
  /// outstanding view); call this after consuming the round's views so an
  /// event-driven engine — which will not touch an idle link again — does
  /// not pin finished streams' payload buffers.
  void release_idle() {
    if (!has_pending()) prune_done();
  }

  /// Streams that would produce a message right now (one each in LOCAL
  /// mode). Lets the fault engine charge a whole drained batch before the
  /// streams advance.
  [[nodiscard]] std::size_t pending_stream_count() const noexcept;

  /// Drains *all* pending streams — one unbounded message per stream, the
  /// LOCAL model of Peleg [20], used by the neighbours-of-neighbours
  /// baseline — invoking `fn(const MsgView&)` per message. Streams advance
  /// regardless of what fn does (a dropped message was still sent). Returns
  /// the number of messages produced; the caller release_idle()s afterwards.
  template <typename Fn>
  std::size_t drain_views(unsigned header_bits, Fn&& fn) {
    std::size_t produced = 0;
    for (auto& s : streams_) {
      if (!s.pending()) continue;
      MsgView v;
      v.key = s.key;
      v.buf = &s.state->buf;
      v.first_symbol = s.next_symbol;
      v.symbol_count = s.pending_symbols();
      v.bit_off = s.bit_off;
      v.bit_len = s.state->buf.bit_size() - s.bit_off;
      v.wire_bits = header_bits + v.bit_len;
      s.next_symbol = s.state->buf.size();
      s.bit_off = s.state->buf.bit_size();
      if (s.state->closed && !s.eos_done) {
        v.eos = true;
        s.eos_done = true;
        any_done_ = true;
      }
      fn(static_cast<const MsgView&>(v));
      ++produced;
    }
    return produced;
  }

  /// Copying wrapper around drain_views (tests and compatibility callers).
  std::size_t drain_all_into(unsigned header_bits, std::vector<Delivery>& out);

  /// Convenience wrapper for drain_all_into.
  std::optional<std::vector<Delivery>> drain_all(unsigned header_bits);

  /// Number of attached (not yet pruned) streams.
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }

 private:
  /// Round-robin selection shared by schedule_view and schedule_matches:
  /// prunes finished streams, then returns the index of the next pending
  /// stream (streams_.size() when the link is idle). Does not advance
  /// rr_pos_ — the caller does, once the selection is committed.
  std::size_t pick_pending();

  struct ActiveStream {
    StreamKey key;
    std::shared_ptr<const OutStreamState> state;
    std::size_t next_symbol = 0;
    std::size_t bit_off = 0;
    bool eos_done = false;  // EOS already delivered

    [[nodiscard]] std::size_t pending_symbols() const noexcept {
      return state->buf.size() - next_symbol;
    }
    [[nodiscard]] bool pending() const noexcept {
      return pending_symbols() > 0 || (state->closed && !eos_done);
    }
  };

  std::vector<ActiveStream> streams_;
  std::size_t rr_pos_ = 0;
  // Set when some stream's EOS got delivered; prune_done early-outs on it
  // (it runs once per scheduled message, and usually nothing has finished).
  bool any_done_ = false;
};

}  // namespace nc
