#include "runtime/shard.hpp"

#include <algorithm>

namespace nc {

ShardPlan plan_shards(const Graph& g, unsigned k) {
  k = std::clamp(k, 1u, kMaxShards);
  const NodeId n = g.n();

  // Total weight and the greedy walk share one pass shape: cut shard s at
  // the first node whose prefix weight reaches ceil(total * s / k), which
  // keeps every boundary deterministic and the heaviest shard within one
  // node's weight of the ideal.
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    total += static_cast<std::uint64_t>(g.degree(v)) + 1;
  }

  ShardPlan plan;
  plan.bounds.assign(static_cast<std::size_t>(k) + 1, n);
  plan.bounds[0] = 0;
  std::uint64_t prefix = 0;
  unsigned s = 1;
  for (NodeId v = 0; v < n && s < k; ++v) {
    prefix += static_cast<std::uint64_t>(g.degree(v)) + 1;
    // prefix now covers nodes [0, v]; close every shard whose quota
    // (ceil(total * s / k)) this prefix reaches.
    while (s < k && prefix * k >= total * s) {
      plan.bounds[s++] = v + 1;
    }
  }

  plan.node_shard.resize(n);
  for (unsigned i = 0; i < k; ++i) {
    for (NodeId v = plan.bounds[i]; v < plan.bounds[i + 1]; ++v) {
      plan.node_shard[v] = i;
    }
  }
  return plan;
}

ShardPool::ShardPool(unsigned threads) {
  const unsigned spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardPool::run(unsigned jobs, const std::function<void(unsigned)>& fn) {
  if (jobs == 0) return;
  if (workers_.empty() || jobs == 1) {
    for (unsigned i = 0; i < jobs; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<RunState>();
  state->count = jobs;
  state->fn = &fn;
  state->pending = jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = state;
    ++generation_;
  }
  start_cv_.notify_all();
  work(*state);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return state->pending == 0; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ShardPool::work(RunState& state) {
  while (true) {
    const unsigned i = state.next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= state.count) return;
    try {
      (*state.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!state.first_error) state.first_error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--state.pending == 0) done_cv_.notify_all();
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<RunState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      state = current_;
    }
    work(*state);
  }
}

}  // namespace nc
