#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/paramset.hpp"

namespace nc {

/// Declarative description of the adversity injected into one execution:
/// per-link message loss (iid Bernoulli and/or bursty Gilbert–Elliott),
/// per-link integer delivery delay (fixed + seeded jitter) and node churn
/// (crash-at-round with optional recovery). A plan is typed, seeded and
/// validated exactly like ScenarioParams/AlgoParams — `fault_param_defaults`
/// declares the complete legal key set, so plans parse, merge and reject
/// unknown keys through the same machinery as every other configuration in
/// the repository.
///
/// Determinism contract: every fault decision is a pure function of
/// (fault seed, round, src, dst) — a keyed hash, never a draw from a
/// shared-state generator — so fixed-seed faulty executions are
/// bit-identical at every NetConfig::threads value and independent of the
/// engine's iteration order. The one stateful model, the Gilbert–Elliott
/// channel, keeps per-directed-edge state that advances lazily via the
/// chain's exact t-step closed form; the advance is keyed on (round, edge)
/// and an edge's state is only ever touched by its owning source shard, so
/// the guarantee extends to it unchanged.
///
/// Storage note: a delayed message outlives the round that staged it, so
/// the engine copies it out of the per-round arena lanes into heap-backed
/// per-shard buckets (Network::Shard::delayed) before the arenas rewind.
struct FaultPlan {
  /// iid loss: every scheduled message is dropped independently with this
  /// probability. [0, 1].
  double loss = 0.0;

  /// Gilbert–Elliott bursty loss. The channel of each directed edge is a
  /// two-state Markov chain stepping once per simulated round:
  /// P(good -> bad) = ge_p, P(bad -> good) = ge_r; a message scheduled on
  /// the edge is dropped with probability ge_loss_good / ge_loss_bad
  /// depending on the state. ge_p = 0 disables the model. Composes with
  /// `loss` (a message survives only if both models pass it).
  double ge_p = 0.0;
  double ge_r = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;

  /// Per-message integer delivery delay, uniform in [delay_min, delay_max]
  /// rounds (jitter keyed on (round, src, dst)). 0/0 = synchronous
  /// delivery, the clean model.
  std::uint64_t delay_min = 0;
  std::uint64_t delay_max = 0;

  /// Node churn: every node crashes independently with probability
  /// crash_frac, at round `crash_round`, recovering `recover_after` rounds
  /// later (0 = the crash is permanent). A crashed node's links are
  /// silenced in both directions, its alarms are cancelled, and the runtime
  /// fires INode::on_crash / INode::on_recover at the boundary rounds.
  double crash_frac = 0.0;
  std::uint64_t crash_round = 1;
  std::uint64_t recover_after = 0;

  /// Seed of the fault decision stream. 0 = derive from the network seed,
  /// so re-seeding a run re-seeds its adversity with it; any other value
  /// pins the fault pattern independently of the protocol's randomness.
  std::uint64_t fault_seed = 0;

  /// Targeted (adversarial) loss: an extra per-message drop probability for
  /// the directed channel src -> dst, composed with the stochastic models
  /// above (a message survives only if every model passes it). The hook is
  /// a test/experiment construct — it has no param-bag key and no CLI
  /// surface — but its decisions go through the same keyed-hash draw as
  /// everything else, so hooked runs keep the thread-invariance guarantee
  /// as long as the hook itself is a pure function of (src, dst). The
  /// reliability layer folds the hook into its retransmit/ACK loss
  /// marginals, so targeted loss degrades recovery honestly too.
  std::function<double(NodeId src, NodeId dst)> loss_hook;

  /// True when any fault model is enabled (the engine is only constructed,
  /// and the staged delivery path only consulted, for active plans — a
  /// default plan costs the fault-free hot path nothing).
  [[nodiscard]] bool any() const noexcept {
    return loss > 0.0 || ge_p > 0.0 || delay_max > 0 || crash_frac > 0.0 ||
           static_cast<bool>(loss_hook);
  }

  /// Throws std::invalid_argument on out-of-range probabilities,
  /// delay_min > delay_max, ge_p > 0 with ge_r == 0 (the chain would absorb
  /// into the bad state), or crash_round == 0 (nodes exist from round 1).
  void validate() const;

  /// One-line "loss=0.05 delay=[0,3] crash=1%@r10+50" style rendering.
  [[nodiscard]] std::string summary() const;
};

/// The complete legal fault parameter set with its default (fault-free)
/// values: loss, ge_p, ge_r, ge_loss_good, ge_loss_bad, delay_min,
/// delay_max, crash_frac, crash_round, recover_after, fault_seed. Network
/// algorithms splice these keys into their declared defaults so fault knobs
/// ride the existing param-bag validation and sweep-axis machinery.
const ParamSet& fault_param_defaults();

/// Reads a FaultPlan from a param bag holding (a subset of) the declared
/// fault keys, validates it and returns it. Missing keys take the plan
/// defaults.
FaultPlan fault_plan_from_params(const ParamSet& params);

/// Parses a "loss=0.05,delay_max=3,crash_frac=0.01" CSV against the
/// declared key set (unknown keys throw with the catalogue) and validates
/// the resulting plan. The `--faults=` front end.
FaultPlan parse_fault_plan(const std::string& csv);

/// Keyed fault decision hash: a pure function of (seed, salt, round, a, b)
/// built from chained SplitMix64 finalizers. All fault randomness flows
/// through this, which is what makes fault decisions independent of
/// iteration order and thread count.
[[nodiscard]] std::uint64_t fault_mix(std::uint64_t seed, std::uint64_t salt,
                                      std::uint64_t round, std::uint64_t a,
                                      std::uint64_t b) noexcept;

/// fault_mix mapped to a uniform double in [0, 1) (53 bits of precision).
[[nodiscard]] double fault_uniform(std::uint64_t seed, std::uint64_t salt,
                                   std::uint64_t round, std::uint64_t a,
                                   std::uint64_t b) noexcept;

/// Per-execution fault machinery: the crash schedule (precomputed per node)
/// and the per-message loss/delay decisions (stateless keyed hashes, plus
/// the lazily-advanced Gilbert–Elliott edge states). Owned by Network when
/// the plan is active.
///
/// Threading: `lose` mutates the Gilbert–Elliott state of the queried edge
/// and must only be called from the edge's owning (source) shard — the
/// stage phase's natural call site. Everything else is const and safe from
/// any phase.
class FaultEngine {
 public:
  /// "Never happens" round sentinel (same value as Network's kNoAlarm).
  static constexpr std::uint64_t kNever = ~0ULL;

  /// `directed_edges` sizes the Gilbert–Elliott state table (only
  /// allocated when the model is enabled); `n` sizes the crash schedule
  /// (only when crash_frac > 0). `net_seed` seeds the decision stream when
  /// the plan does not pin its own fault_seed.
  FaultEngine(const FaultPlan& plan, NodeId n, std::size_t directed_edges,
              std::uint64_t net_seed);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Round at which node v crashes (kNever if it never does).
  [[nodiscard]] std::uint64_t crash_round(NodeId v) const noexcept {
    return crash_round_.empty() ? kNever : crash_round_[v];
  }

  /// Round at which node v recovers (kNever if it never crashes or the
  /// crash is permanent).
  [[nodiscard]] std::uint64_t recover_round(NodeId v) const noexcept {
    return recover_round_.empty() ? kNever : recover_round_[v];
  }

  /// True when v is crashed during `round`.
  [[nodiscard]] bool crashed_at(NodeId v, std::uint64_t round) const noexcept {
    return crash_round(v) <= round && round < recover_round(v);
  }

  /// Loss decision for the one message scheduled on directed edge `edge`
  /// (src -> dst) in `round`: true = drop. Advances the edge's
  /// Gilbert–Elliott state when that model is enabled; call at most once
  /// per (edge, round), from the edge's owning shard.
  [[nodiscard]] bool lose(std::size_t edge, NodeId src, NodeId dst,
                          std::uint64_t round);

  /// Delivery delay in rounds for the message scheduled on directed edge
  /// `edge` (src -> dst) in `round`: delay_min plus keyed jitter up to
  /// delay_max, clamped so a message never overtakes an earlier one on the
  /// same link (a per-edge arrival watermark — links have variable latency
  /// but stay FIFO, which the sequence-number-free wire format requires).
  /// Mutates the watermark; same ownership rule as lose().
  [[nodiscard]] std::uint64_t delay_of(std::size_t edge, NodeId src,
                                       NodeId dst, std::uint64_t round);

  /// The Gilbert–Elliott stationary bad-state probability
  /// ge_p / (ge_p + ge_r) (0 when the model is disabled); exposed so the
  /// statistical tests and docs state the expected marginal loss rate
  /// pi_bad * ge_loss_bad + (1 - pi_bad) * ge_loss_good from one source.
  [[nodiscard]] double ge_stationary_bad() const noexcept { return pi_bad_; }

  /// The edge's FIFO arrival watermark (the latest delivery round handed
  /// out by delay_of; 0 when the delay model is off). The reliability
  /// layer's release floor takes the max with this, so a recovered message
  /// never undercuts an earlier jittered one.
  [[nodiscard]] std::uint64_t arrival_floor(std::size_t edge) const noexcept {
    return arrival_.empty() ? 0 : arrival_[edge];
  }

 private:
  FaultPlan plan_;
  std::uint64_t seed_;

  // Gilbert–Elliott: cached chain constants and the per-directed-edge
  // packed state (last evaluated round << 1 | bad). Advancing from round
  // r0 to r uses the exact t-step distribution
  //   P(bad at r) = pi_bad + (bad0 - pi_bad) * (1 - p - r)^(r - r0)
  // sampled with one keyed draw, so the lazy chain is statistically
  // identical to stepping every round and costs O(1) per message.
  double pi_bad_ = 0.0;
  double decay_ = 0.0;  ///< 1 - ge_p - ge_r
  std::vector<std::uint64_t> ge_state_;

  // Per-directed-edge FIFO arrival watermark (the latest delivery round
  // handed out on the link); only allocated when delay is enabled.
  std::vector<std::uint64_t> arrival_;

  std::vector<std::uint64_t> crash_round_;    // per node; empty = no churn
  std::vector<std::uint64_t> recover_round_;  // per node; empty = no churn
};

}  // namespace nc
