#pragma once

#include <cstdint>
#include <memory>

#include "runtime/message.hpp"

namespace nc {

/// Shared state of one outgoing logical stream: the packed symbol payload
/// plus the closed flag. One heap allocation per stream, shared between the
/// producer's OutChannel and every Link the stream was opened on (a
/// broadcast to many neighbours stores its payload once).
struct OutStreamState {
  SymbolBuffer buf;
  bool closed = false;
};

/// Producer handle for an outgoing logical stream.
///
/// Appending after the runtime has started draining the stream is allowed —
/// that is what makes the coordinate-pipelined convergecasts of Lemma 5.1
/// possible — and `close()` marks the logical end of stream, which links
/// deliver to receivers as an EOS flag.
///
/// Sharded-engine note: the producer appends from its node's wake-phase
/// callback and the owning shard's stage phase reads the buffer in the
/// *next* phase — writes and reads are separated by the pool barrier, so
/// the shared state carries no locks. All links a broadcast was opened on
/// share one OutStreamState and always live on the producer's shard.
class OutChannel {
 public:
  OutChannel() : state_(std::make_shared<OutStreamState>()) {}

  /// Appends one symbol. Precondition: not closed.
  void put(std::uint64_t value, unsigned width) {
    state_->buf.put(value, width);
  }

  /// Appends one bit.
  void put_bit(bool b) { state_->buf.put_bit(b); }

  /// Marks end of stream; links will deliver EOS after the last symbol.
  void close() { state_->closed = true; }

  /// True once close() has been called.
  [[nodiscard]] bool closed() const noexcept { return state_->closed; }

  /// Symbols written so far.
  [[nodiscard]] std::size_t size() const noexcept {
    return state_->buf.size();
  }

  /// Shared state, used by links.
  [[nodiscard]] std::shared_ptr<const OutStreamState> state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<OutStreamState> state_;
};

/// Receiver side of a logical stream: a growing buffer of delivered symbols
/// plus the EOS flag. Protocol code consumes it strictly sequentially.
class InStream {
 public:
  /// Appends a delivered symbol (runtime use).
  void deliver(std::uint64_t value, unsigned width) { buf_.put(value, width); }

  /// Appends a whole run of `count` symbols (`nbits` payload bits) blitted
  /// from a packed word array in 64-bit chunks (runtime use — the deliver
  /// phase moves a message's payload with this instead of per-symbol puts;
  /// the resulting buffer is bit-identical to the put() sequence).
  void deliver_packed(const std::uint64_t* words, std::size_t word_count,
                      std::size_t src_bit, std::size_t nbits,
                      const std::uint8_t* widths, std::size_t count) {
    buf_.append_packed(words, word_count, src_bit, nbits, widths, count);
  }

  /// Marks EOS delivered (runtime use).
  void deliver_eos() noexcept { closed_ = true; }

  /// Symbols delivered but not yet consumed.
  [[nodiscard]] std::size_t available() const noexcept {
    return buf_.size() - read_idx_;
  }

  /// Consumes the next symbol. Precondition: available() > 0.
  std::uint64_t pop() noexcept {
    const unsigned w = buf_.width_at(read_idx_);
    const std::uint64_t v = buf_.value_at(read_bit_, w);
    read_bit_ += w;
    ++read_idx_;
    return v;
  }

  /// True if EOS was delivered.
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  /// True if EOS was delivered and everything has been consumed.
  [[nodiscard]] bool finished() const noexcept {
    return closed_ && available() == 0;
  }

  /// Total symbols ever delivered (consumed or not).
  [[nodiscard]] std::size_t delivered() const noexcept { return buf_.size(); }

 private:
  SymbolBuffer buf_;
  std::size_t read_idx_ = 0;
  std::size_t read_bit_ = 0;
  bool closed_ = false;
};

}  // namespace nc
