#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace nc {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed into four non-zero state words.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // all-zero is invalid
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256** by Blackman & Vigna.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire rejection sampling: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

Rng Rng::derive(std::uint64_t stream) const noexcept {
  // Hash the full state together with the stream id so sibling streams and
  // parent/child streams are pairwise independent.
  std::uint64_t h = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  h ^= 0x6a09e667f3bcc909ULL + stream;
  std::uint64_t sm = h;
  (void)splitmix64(sm);
  (void)splitmix64(sm);
  return Rng(splitmix64(sm) ^ (stream * 0x9e3779b97f4a7c15ULL));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t n, std::uint32_t k) noexcept {
  if (k >= n) {
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace nc
