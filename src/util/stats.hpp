#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nc {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the benchmark harness to aggregate per-trial measurements
/// (success indicators, output densities, round counts) without storing
/// every sample.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Sample mean (0 when empty).
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than two observations).
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest / largest observation (0 when empty).
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact empirical quantile of a sample (by sorting a copy).
/// `q` in [0,1]; empty input yields 0. Uses the nearest-rank method.
double quantile(std::vector<double> xs, double q);

/// Wilson score interval for a binomial proportion. Returns {lo, hi} for
/// `successes` out of `trials` at ~95% confidence (z = 1.96). Trials == 0
/// yields {0, 1}. Used to report success-probability estimates with error
/// bars in EXPERIMENTS.md.
struct Interval {
  double lo;
  double hi;
};
Interval wilson_interval(std::size_t successes, std::size_t trials);

/// Least-squares slope of y against x. Used by scaling experiments (E5, E9)
/// to estimate growth exponents: fitting log(rounds) vs |S| should give a
/// slope near log 2 for Lemma 5.1. Returns 0 for fewer than two points.
double least_squares_slope(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace nc
