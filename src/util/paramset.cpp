#include "util/paramset.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nc {

namespace {

[[noreturn]] void missing_key(const std::string& key) {
  throw std::invalid_argument("parameter '" + key + "' is not set");
}

}  // namespace

std::string join_comma(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

double ParamSet::get_double(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    if (strings_.contains(key)) {
      throw std::invalid_argument("parameter '" + key +
                                  "' is a string, not a number");
    }
    missing_key(key);
  }
  return it->second;
}

std::int64_t ParamSet::get_int(const std::string& key) const {
  return std::llround(get_double(key));
}

bool ParamSet::get_bool(const std::string& key) const {
  return get_double(key) != 0.0;
}

const std::string& ParamSet::get_string(const std::string& key) const {
  const auto it = strings_.find(key);
  if (it == strings_.end()) {
    if (values_.contains(key)) {
      throw std::invalid_argument("parameter '" + key +
                                  "' is a number, not a string");
    }
    missing_key(key);
  }
  return it->second;
}

double ParamSet::get_double_or(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::vector<std::string> ParamSet::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size() + strings_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  for (const auto& [k, v] : strings_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

ParamSet merge_params(const ParamSet& defaults, const ParamSet& overrides,
                      const std::string& context) {
  ParamSet merged = defaults;
  const auto unknown = [&](const std::string& key) -> std::invalid_argument {
    return std::invalid_argument(context + " has no parameter '" + key +
                                 "'; parameters: " +
                                 join_comma(defaults.keys()));
  };
  for (const auto& [key, value] : overrides.values()) {
    if (defaults.has_string(key)) {
      throw std::invalid_argument(context + " parameter '" + key +
                                  "' expects a string value");
    }
    if (!defaults.has_number(key)) throw unknown(key);
    merged.with(key, value);
  }
  for (const auto& [key, value] : overrides.strings()) {
    if (defaults.has_number(key)) {
      throw std::invalid_argument(context + " parameter '" + key +
                                  "' expects a numeric value");
    }
    if (!defaults.has_string(key)) throw unknown(key);
    merged.with(key, value);
  }
  return merged;
}

ParamSet parse_params_csv(const std::string& csv, const ParamSet* declared) {
  ParamSet out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed parameter '" + item +
                                  "' (expected key=value)");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (declared != nullptr && declared->has_string(key)) {
      out.with(key, value);
      continue;
    }
    out.with(key, parse_number(value, "parameter value for key '" + key + "'"));
  }
  return out;
}

double parse_number(const std::string& text, const std::string& what) {
  if (text == "true") return 1.0;
  if (text == "false") return 0.0;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed " + what + " '" + text + "'");
  }
}

std::string describe_params(const ParamSet& params) {
  std::ostringstream os;
  for (const auto& [key, value] : params.values()) {
    os << " " << key << "=" << value;
  }
  for (const auto& [key, value] : params.strings()) {
    os << " " << key << "=" << (value.empty() ? "<unset>" : value);
  }
  return os.str();
}

}  // namespace nc
