#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace nc {

/// Minimal `--key=value` / `--flag` command-line parser for the example
/// programs. Unknown keys are kept (so google-benchmark flags pass through
/// untouched in bench binaries that also accept experiment knobs).
class Args {
 public:
  /// Parses argv; arguments not starting with "--" are ignored.
  Args(int argc, const char* const* argv);

  /// Returns the value for `key`, or `def` if absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def = false) const;

  /// True if the key was present on the command line.
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace nc
