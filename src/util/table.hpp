#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nc {

/// Column-aligned ASCII table writer.
///
/// Every bench binary prints the rows/series of the experiment it reproduces
/// through this class so EXPERIMENTS.md entries and terminal output share a
/// format. Cells are strings; numeric helpers format with fixed precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a full row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 3);

  /// Formats an integer value.
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string str() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nc
