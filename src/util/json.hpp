#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nc {

/// Minimal streaming JSON writer (objects, arrays, scalars) for the
/// machine-readable experiment outputs (sweep JSON lines, BENCH_*.json).
/// Keys are emitted in call order, so schemas are deterministic and
/// golden-testable. No dependencies, no reflection — callers spell out the
/// structure:
///
///   JsonWriter w;
///   w.begin_object().key("n").value(std::uint64_t{150})
///    .key("tags").begin_array().value("a").value("b").end_array()
///    .end_object();
///   w.str();  // {"n":150,"tags":["a","b"]}
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key (must be inside an object, before its value).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(double v);  ///< non-finite values emit null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Escapes a string for embedding in JSON (no surrounding quotes).
  static std::string escape(const std::string& s);

  /// Formats a finite double compactly ("150", "0.375", "1.25e-06").
  static std::string number(double v);

 private:
  void separate();  ///< comma bookkeeping before a key/value

  std::string out_;
  std::vector<bool> first_in_scope_{true};
  bool after_key_ = false;
};

}  // namespace nc
