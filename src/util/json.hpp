#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nc {

/// Minimal streaming JSON writer (objects, arrays, scalars) for the
/// machine-readable experiment outputs (sweep JSON lines, BENCH_*.json).
/// Keys are emitted in call order, so schemas are deterministic and
/// golden-testable. No dependencies, no reflection — callers spell out the
/// structure:
///
///   JsonWriter w;
///   w.begin_object().key("n").value(std::uint64_t{150})
///    .key("tags").begin_array().value("a").value("b").end_array()
///    .end_object();
///   w.str();  // {"n":150,"tags":["a","b"]}
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key (must be inside an object, before its value).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(double v);  ///< non-finite values emit null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Escapes a string for embedding in JSON (no surrounding quotes).
  static std::string escape(const std::string& s);

  /// Formats a finite double compactly ("150", "0.375", "1.25e-06").
  static std::string number(double v);

 private:
  void separate();  ///< comma bookkeeping before a key/value

  std::string out_;
  std::vector<bool> first_in_scope_{true};
  bool after_key_ = false;
};

/// Parsed JSON value — the reader counterpart of JsonWriter, used by the
/// sweep spec-file front end (`nearclique sweep --spec=FILE`). A small
/// tagged struct rather than a variant zoo: numbers are doubles (every
/// numeric field in this codebase is a count, probability or fraction, the
/// same convention as ParamSet), objects keep insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Checked accessors: throw std::invalid_argument naming `what` when the
  /// value has the wrong kind.
  [[nodiscard]] double as_number(const std::string& what) const;
  [[nodiscard]] const std::string& as_string(const std::string& what) const;
  [[nodiscard]] const std::vector<JsonValue>& as_array(
      const std::string& what) const;
};

/// Parses a complete JSON document (one value; trailing whitespace only).
/// Supports the full scalar/array/object grammar with string escapes
/// (\uXXXX included, encoded as UTF-8). Throws std::invalid_argument with
/// the byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace nc
