#pragma once

#include <cstdint>
#include <limits>

namespace nc {

/// Node identifier. The CONGEST model assumes unique O(log n)-bit IDs;
/// we use the dense range [0, n) so an ID always fits in ceil(log2 n) bits.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (the paper's NULL parent pointer / bottom label).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Output label of the algorithm: either a near-clique identifier or kBottom.
/// Labels are root IDs (possibly extended with a boosting version index, see
/// core/boosting.hpp), so a 64-bit value is used to avoid aliasing.
using Label = std::uint64_t;

/// The special label the paper writes as bottom: "not associated with any
/// near-clique".
inline constexpr Label kBottom = std::numeric_limits<Label>::max();

}  // namespace nc
