#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace nc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << std::string(width[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

}  // namespace nc
