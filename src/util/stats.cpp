#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace nc {

void RunningStat::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

Interval wilson_interval(std::size_t successes, std::size_t trials) {
  if (trials == 0) return {0.0, 1.0};
  constexpr double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double least_squares_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace nc
