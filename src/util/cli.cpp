#include "util/cli.hpp"

#include <cstdlib>

namespace nc {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      // std::string("1") sidesteps GCC 12's -Wrestrict false positive on
      // basic_string::operator=(const char*) at -O2 (GCC PR105329).
      kv_[arg] = std::string("1");
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Args::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second != "0" && it->second != "false";
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

}  // namespace nc
