#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace nc {

/// Chunked bump allocator for per-round transient storage.
///
/// The sharded simulator's hot path produces large volumes of short-lived
/// data every round — staged message columns, lane payload buffers — whose
/// lifetime ends at a phase barrier. An arena turns that churn into pointer
/// bumps: `allocate` advances an offset inside the current block, `reset`
/// rewinds in O(1) and keeps the memory for the next round. Nothing is ever
/// freed individually (allocations are trivially-destructible by contract).
///
/// Growth: when a block fills, a new block of at least twice the previous
/// capacity is chained. `reset` with more than one live block coalesces
/// them into a single block sized for the observed footprint, so the steady
/// state is one block and one offset rewind per round.
///
/// Accounting: `bytes_used()` is the live bump offset (including alignment
/// padding and spans abandoned by growing ArenaVecs — the honest transient
/// footprint of the round) and `high_water_bytes()` is the maximum ever
/// observed across resets; the bench artifacts record it per shard
/// (docs/benchmarks.md).
///
/// Shard ownership (see src/runtime/README.md): each simulator shard owns
/// one arena, touched only by the worker running that shard's phase —
/// arenas need no synchronization and are not thread-safe.
class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t initial_capacity);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Bump-allocates `size` bytes aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t)). Never returns nullptr; size 0
  /// returns a valid unique pointer. The memory is uninitialized.
  void* allocate(std::size_t size,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed span of `count` default-alignment slots (uninitialized).
  /// T must be trivially copyable and trivially destructible — the arena
  /// never runs destructors.
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Invalidates every allocation and rewinds to an empty arena in O(1),
  /// keeping (and, after a multi-block round, coalescing) the backing
  /// memory. Anything still pointing into the arena is dangling after
  /// this — callers re-carve their containers each round.
  void reset();

  /// Releases all backing memory (capacity drops to zero).
  void release();

  /// Live bytes bumped since the last reset (padding included).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }

  /// Total backing capacity currently held.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Maximum bytes_used() ever observed (across resets).
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_;
  }

 private:
  struct Block {
    Block* prev = nullptr;  ///< older, full blocks (chained for cleanup)
    std::size_t capacity = 0;
    // Data follows the header, suitably aligned.
    [[nodiscard]] unsigned char* data() noexcept {
      return reinterpret_cast<unsigned char*>(this + 1);
    }
  };

  static constexpr std::size_t kMinBlockBytes = 4096;

  /// Chains a fresh block with at least `need` data bytes.
  void grow(std::size_t need);

  Block* head_ = nullptr;      ///< current block (allocations come from here)
  std::size_t offset_ = 0;     ///< bump offset inside head_
  std::size_t used_ = 0;       ///< bytes bumped since last reset (all blocks)
  std::size_t capacity_ = 0;   ///< sum of block capacities
  std::size_t high_water_ = 0;
};

/// Growable array of a trivially copyable T, backed either by an Arena
/// (per-round data: growth abandons the old span — the arena reclaims it at
/// reset) or by the heap when no arena is bound (long-lived data, e.g. the
/// fault engine's cross-round delayed buckets: growth frees the old span).
///
/// Unlike std::vector the element type contract is explicit (memcpy moves,
/// no destructors), `clear()` never touches memory, and the backing policy
/// is a runtime property — the SoA message block uses one type for both
/// lane and bucket storage (src/runtime/msgblock.hpp).
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  ArenaVec() = default;
  ~ArenaVec() { release(); }

  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;
  ArenaVec(ArenaVec&& other) noexcept { *this = std::move(other); }
  ArenaVec& operator=(ArenaVec&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
      arena_ = std::exchange(other.arena_, nullptr);
    }
    return *this;
  }

  /// Binds the backing policy: an arena, or nullptr for heap mode. Must be
  /// called while empty with no backing span (freshly constructed or after
  /// release()) — rebinding a live span would leak it in heap mode and
  /// free arena memory the arena still owns in arena mode.
  void bind(Arena* arena) noexcept {
    nc_invariant(data_ == nullptr && size_ == 0,
                 "ArenaVec::bind requires an empty vector with no span");
    arena_ = arena;
  }

  /// Drops the span. Arena mode: the memory belongs to the arena (a reset
  /// reclaims it); heap mode: freed. Required after the bound arena was
  /// reset — the old span is dangling.
  void release() noexcept {
    if (arena_ == nullptr && data_ != nullptr) {
      ::operator delete(static_cast<void*>(data_));
    }
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t want) {
    if (want > capacity_) grow(want);
  }

  T& push_back(const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_] = value;
    return data_[size_++];
  }

  /// Appends `count` uninitialized slots and returns the first.
  T* append(std::size_t count) {
    if (size_ + count > capacity_) grow(size_ + count);
    T* out = data_ + size_;
    size_ += count;
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity_slots() const noexcept {
    return capacity_;
  }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& back() noexcept { return data_[size_ - 1]; }
  void pop_back() noexcept { --size_; }

 private:
  void grow(std::size_t need) {
    std::size_t want = capacity_ < 8 ? 8 : capacity_ * 2;
    if (want < need) want = need;
    T* fresh;
    if (arena_ != nullptr) {
      fresh = arena_->allocate_array<T>(want);
    } else {
      fresh = static_cast<T*>(::operator new(want * sizeof(T)));
    }
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    if (arena_ == nullptr && data_ != nullptr) {
      ::operator delete(static_cast<void*>(data_));
    }
    data_ = fresh;
    capacity_ = want;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  Arena* arena_ = nullptr;
};

}  // namespace nc
