#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nc {

/// Fixed-capacity dynamic bit vector with word-level operations.
///
/// Used for adjacency masks, K/T membership vectors indexed by subset, and
/// node-set indicators. Unlike std::vector<bool> it exposes popcount,
/// intersection counting and word access, which the exploration stage's
/// subset enumeration relies on (Step 4a computes |Gamma(u) ∩ X| as a masked
/// popcount).
class BitVec {
 public:
  BitVec() = default;

  /// Constructs an all-zero vector with `n` bits.
  explicit BitVec(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  /// Number of bits.
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Resets to all-zero with a (possibly new) size.
  void assign_zero(std::size_t n);

  /// Tests bit `i`. Precondition: i < size().
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` to `v`. Precondition: i < size().
  void set(std::size_t i, bool v = true) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Number of set bits in the intersection with `other`.
  /// Precondition: same size.
  [[nodiscard]] std::size_t count_and(const BitVec& other) const noexcept;

  /// In-place union / intersection / difference. Precondition: same size.
  BitVec& operator|=(const BitVec& other) noexcept;
  BitVec& operator&=(const BitVec& other) noexcept;
  BitVec& subtract(const BitVec& other) noexcept;

  /// True if no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// Equality compares sizes and bit contents.
  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const;

  /// Builds a vector of `n` bits with the given indices set.
  static BitVec from_indices(std::size_t n,
                             const std::vector<std::uint32_t>& indices);

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nc
