#include "util/bitio.hpp"

#include <bit>
#include <cassert>

namespace nc {

void BitWriter::put(std::uint64_t value, unsigned width) {
  assert(width <= 64);
  assert(width == 64 || value < (1ULL << width));
  if (width == 0) return;
  const std::size_t word = bits_ >> 6;
  const unsigned off = static_cast<unsigned>(bits_ & 63);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << off;
  if (off + width > 64) {
    words_.push_back(value >> (64 - off));
  }
  bits_ += width;
}

std::uint64_t BitReader::get(unsigned width) {
  assert(width <= 64);
  assert(remaining() >= width);
  if (width == 0) return 0;
  const std::size_t word = pos_ >> 6;
  const unsigned off = static_cast<unsigned>(pos_ & 63);
  std::uint64_t v = (*words_)[word] >> off;
  if (off + width > 64) {
    v |= (*words_)[word + 1] << (64 - off);
  }
  pos_ += width;
  if (width < 64) v &= (1ULL << width) - 1;
  return v;
}

unsigned id_width(std::uint64_t n) noexcept {
  // Smallest w with 2^w > n, i.e. enough to represent any value in [0, n].
  unsigned w = 1;
  while (w < 64 && (1ULL << w) <= n) ++w;
  return w;
}

}  // namespace nc
