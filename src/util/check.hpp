#pragma once

/// Checked-build runtime invariants.
///
/// `nc_invariant(cond, msg)` asserts an engine contract that is too
/// expensive — or too far from any single call site — to express as a type:
/// lane merge order, FIFO delay watermarks, inbox slot-map consistency,
/// arena ownership. The checks compile to nothing unless the build defines
/// NC_CHECK_INVARIANTS, which the CMake option of the same name controls:
/// ON by default (so the dev-default RelWithDebInfo preset and the tier-1
/// test runs execute every check) and forced OFF for Release builds, so the
/// perf gate and the committed BENCH_*.json artifacts never pay for them.
///
/// A failed invariant prints `file:line: invariant failed: <expr> — <msg>`
/// to stderr and aborts. It is not an exception: an invariant failure means
/// engine state is already corrupt, and unwinding through shard workers
/// would only smear it around. Keep conditions side-effect free — under
/// Release they are not evaluated at all.
#if defined(NC_CHECK_INVARIANTS)

namespace nc::detail {
[[noreturn]] void invariant_failure(const char* expr, const char* msg,
                                    const char* file, int line) noexcept;
}  // namespace nc::detail

#define nc_invariant(cond, msg)                                         \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::nc::detail::invariant_failure(#cond, msg, __FILE__, __LINE__))

#else

#define nc_invariant(cond, msg) static_cast<void>(0)

#endif
