#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nc {

/// Walker/Vose alias table: O(n) construction from a non-negative weight
/// vector, O(1) draws from the induced discrete distribution.
///
/// Used by the streaming Chung-Lu generator to sample edge endpoints
/// proportionally to their expected degree without any per-draw scan. The
/// sampling is deterministic given the Rng: each draw consumes exactly one
/// next_below and one next_double.
class AliasTable {
 public:
  /// Builds the table. Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weight[i] / sum(weights).
  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;          ///< acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  ///< fallback index per bucket
};

}  // namespace nc
