#include "util/arena.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nc {

Arena::Arena(std::size_t initial_capacity) {
  if (initial_capacity > 0) grow(initial_capacity);
}

Arena::~Arena() { release(); }

Arena::Arena(Arena&& other) noexcept
    : head_(std::exchange(other.head_, nullptr)),
      offset_(std::exchange(other.offset_, 0)),
      used_(std::exchange(other.used_, 0)),
      capacity_(std::exchange(other.capacity_, 0)),
      high_water_(std::exchange(other.high_water_, 0)) {}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    release();
    head_ = std::exchange(other.head_, nullptr);
    offset_ = std::exchange(other.offset_, 0);
    used_ = std::exchange(other.used_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
    high_water_ = std::exchange(other.high_water_, 0);
  }
  return *this;
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  nc_invariant(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
  // Align the absolute address, not the block-relative offset: block data
  // starts only max_align-aligned, so for align > alignof(max_align_t) the
  // two differ.
  if (head_ != nullptr) {
    const auto base = reinterpret_cast<std::uintptr_t>(head_->data());
    const std::uintptr_t addr =
        (base + offset_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    const std::size_t aligned = static_cast<std::size_t>(addr - base);
    if (aligned + size <= head_->capacity) {
      void* out = head_->data() + aligned;
      used_ += (aligned - offset_) + size;
      offset_ = aligned + size;
      if (used_ > high_water_) high_water_ = used_;
      return out;
    }
  }
  grow(size + align - 1);  // slack so the fresh block can align too
  const auto base = reinterpret_cast<std::uintptr_t>(head_->data());
  const std::uintptr_t addr =
      (base + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
  const std::size_t aligned = static_cast<std::size_t>(addr - base);
  void* out = head_->data() + aligned;
  offset_ = aligned + size;
  used_ += aligned + size;
  if (used_ > high_water_) high_water_ = used_;
  return out;
}

void Arena::reset() {
  if (head_ != nullptr && head_->prev != nullptr) {
    // Multi-block round: replace the chain with one block sized for the
    // observed footprint so the steady state is a single rewind.
    const std::size_t want = std::max(capacity_, used_);
    release();
    grow(want);
  }
  offset_ = 0;
  used_ = 0;
  nc_invariant(head_ == nullptr || head_->prev == nullptr,
               "arena reset must leave a single coalesced block");
}

void Arena::release() {
  Block* b = head_;
  while (b != nullptr) {
    Block* prev = b->prev;
    ::operator delete(static_cast<void*>(b));
    b = prev;
  }
  head_ = nullptr;
  offset_ = 0;
  used_ = 0;
  capacity_ = 0;
}

void Arena::grow(std::size_t need) {
  std::size_t want = head_ == nullptr ? kMinBlockBytes : head_->capacity * 2;
  if (want < need) want = need;
  // operator new returns max_align storage and sizeof(Block) is a multiple
  // of that alignment, so Block::data() (== this + 1) starts max_aligned.
  static_assert(sizeof(Block) % alignof(std::max_align_t) == 0);
  auto* raw = static_cast<unsigned char*>(::operator new(sizeof(Block) + want));
  auto* block = reinterpret_cast<Block*>(raw);
  block->prev = head_;
  block->capacity = want;
  head_ = block;
  offset_ = 0;
  capacity_ += want;
}

}  // namespace nc
