#pragma once

#include <cstdint>
#include <vector>

namespace nc {

/// Append-only bit-level encoder.
///
/// The CONGEST runtime accounts message sizes in bits, so every payload is
/// serialized through this writer. Values are written little-endian,
/// fixed-width; widths are chosen by the caller (typically ceil(log2(n+1))
/// bits for IDs and counters, per the paper's "messages can describe a
/// constant number of nodes, edges, and polynomially-bounded numbers").
class BitWriter {
 public:
  /// Appends the low `width` bits of `value`. Precondition: width <= 64 and
  /// value < 2^width.
  void put(std::uint64_t value, unsigned width);

  /// Appends a single bit.
  void put_bit(bool b) { put(b ? 1 : 0, 1); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_size() const noexcept { return bits_; }

  /// The backing words (little-endian bit order within each word).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

/// Sequential bit-level decoder over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint64_t>& words, std::size_t bit_size)
      : words_(&words), bits_(bit_size) {}

  /// Reads the next `width` bits as an unsigned value.
  /// Precondition: remaining() >= width.
  std::uint64_t get(unsigned width);

  /// Reads a single bit.
  bool get_bit() { return get(1) != 0; }

  /// Bits not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept { return bits_ - pos_; }

 private:
  const std::vector<std::uint64_t>* words_;
  std::size_t bits_;
  std::size_t pos_ = 0;
};

/// Width in bits of the standard CONGEST "word": enough for any ID in [0, n]
/// or any counter bounded by a polynomial in n of fixed degree. The paper's
/// counters are at most n, so ceil(log2(n+1)) suffices.
unsigned id_width(std::uint64_t n) noexcept;

}  // namespace nc
