#pragma once

#include <sstream>
#include <string>

namespace nc {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kWarn so tests and benches stay quiet unless asked.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one log line (thread-compatible: the simulator is single-threaded,
/// so no locking is required; benches run trials sequentially).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
/// RAII line builder: streams into a buffer, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace nc

/// Streaming log macros; evaluation of the stream expression is skipped
/// entirely when the level is filtered out.
#define NC_LOG(level)                      \
  if (static_cast<int>(level) < static_cast<int>(::nc::log_level())) { \
  } else                                   \
    ::nc::detail::LogStream(level)

#define NC_DEBUG NC_LOG(::nc::LogLevel::kDebug)
#define NC_INFO NC_LOG(::nc::LogLevel::kInfo)
#define NC_WARN NC_LOG(::nc::LogLevel::kWarn)
#define NC_ERROR NC_LOG(::nc::LogLevel::kError)
