#include "util/check.hpp"

#if defined(NC_CHECK_INVARIANTS)

#include <cstdio>
#include <cstdlib>

namespace nc::detail {

void invariant_failure(const char* expr, const char* msg, const char* file,
                       int line) noexcept {
  std::fprintf(stderr, "%s:%d: invariant failed: %s — %s\n", file, line, expr,
               msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace nc::detail

#endif
