#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nc {

/// Typed parameter bag shared by the scenario and algorithm registries.
/// Numeric values are stored as doubles (every numeric parameter in this
/// codebase is a count, probability or fraction); the typed getters round or
/// threshold as appropriate. String values (file paths, objective names) are
/// kept in a separate map so numeric parsing stays exact. The fluent `with`
/// avoids narrowing pitfalls of brace initialization:
///
///   ParamSet().with("n", 200).with("path", "graph.txt")
class ParamSet {
 public:
  ParamSet() = default;

  template <typename T>
  ParamSet&& with(const std::string& key, T value) && {
    values_[key] = static_cast<double>(value);
    return std::move(*this);
  }
  template <typename T>
  ParamSet& with(const std::string& key, T value) & {
    values_[key] = static_cast<double>(value);
    return *this;
  }
  ParamSet&& with(const std::string& key, std::string value) && {
    strings_[key] = std::move(value);
    return std::move(*this);
  }
  ParamSet& with(const std::string& key, std::string value) & {
    strings_[key] = std::move(value);
    return *this;
  }
  ParamSet&& with(const std::string& key, const char* value) && {
    return std::move(*this).with(key, std::string(value));
  }
  ParamSet& with(const std::string& key, const char* value) & {
    return with(key, std::string(value));
  }

  /// True when the key is set, as either a numeric or a string value.
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key) || strings_.contains(key);
  }
  [[nodiscard]] bool has_number(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] bool has_string(const std::string& key) const {
    return strings_.contains(key);
  }

  /// Getters throw std::invalid_argument when the key is absent (or set
  /// with the other type).
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;
  [[nodiscard]] const std::string& get_string(const std::string& key) const;

  /// Convenience: the numeric value when set, `def` otherwise.
  [[nodiscard]] double get_double_or(const std::string& key, double def) const;

  [[nodiscard]] const std::map<std::string, double>& values() const {
    return values_;
  }
  [[nodiscard]] const std::map<std::string, std::string>& strings() const {
    return strings_;
  }

  /// Union of numeric and string keys, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, double> values_;
  std::map<std::string, std::string> strings_;
};

/// Merges `overrides` onto `defaults`: every override key must be declared
/// in the defaults with the same type. Throws std::invalid_argument with a
/// self-explaining message ("<context> has no parameter 'x'; parameters:
/// ...") on unknown keys or numeric/string type mismatches. `context` reads
/// like "scenario family 'theorem'" or "algorithm 'peeling'".
ParamSet merge_params(const ParamSet& defaults, const ParamSet& overrides,
                      const std::string& context);

/// Parses a "key=value,key=value" list. Values parse as numbers (or
/// true/false), except keys that `declared` (when non-null) marks as string
/// parameters, which are taken verbatim. Throws std::invalid_argument on
/// malformed input.
ParamSet parse_params_csv(const std::string& csv,
                          const ParamSet* declared = nullptr);

/// One-line " key=value key2=value2" rendering (defaults catalogues, table
/// cells). Numeric values use the default ostream format.
std::string describe_params(const ParamSet& params);

/// "a, b, c" — shared by every registry's catalogue-listing error message.
std::string join_comma(const std::vector<std::string>& parts);

/// Strict numeric literal parse (the whole string must be consumed; also
/// accepts true/false as 1/0). Throws std::invalid_argument mentioning
/// `what`. The single implementation behind parameter and grid parsing.
double parse_number(const std::string& text, const std::string& what);

}  // namespace nc
