#include "util/alias.hpp"

#include <cassert>
#include <stdexcept>

namespace nc {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weight vector");
  double sum = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("AliasTable: zero total weight");

  prob_.resize(n);
  alias_.resize(n);
  // Vose's stack-free variant: partition buckets into under-/over-full by
  // scaled weight, then pair each under-full bucket with an over-full donor.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / sum;
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly-full up to rounding error.
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint32_t AliasTable::sample(Rng& rng) const noexcept {
  const auto i =
      static_cast<std::uint32_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

}  // namespace nc
