#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace nc {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key; no comma
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separate();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  separate();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace nc
