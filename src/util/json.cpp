#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nc {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key; no comma
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separate();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  separate();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// JsonValue / parse_json
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_number(const std::string& what) const {
  if (kind != Kind::kNumber) {
    throw std::invalid_argument(what + " must be a number");
  }
  return number;
}

const std::string& JsonValue::as_string(const std::string& what) const {
  if (kind != Kind::kString) {
    throw std::invalid_argument(what + " must be a string");
  }
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& what) const {
  if (kind != Kind::kArray) {
    throw std::invalid_argument(what + " must be an array");
  }
  return array;
}

namespace {

/// Recursive-descent parser over the document. Position-stamped errors so a
/// broken spec file points at the offending byte.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool try_consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (try_consume("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (try_consume("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (try_consume("null")) return {};
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  unsigned parse_u_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_u_escape();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: RFC 8259 encodes non-BMP code points as a
            // \uXXXX\uXXXX pair; combine instead of emitting CESU-8.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned lo = parse_u_escape();
            if (lo < 0xdc00 || lo > 0xdfff) {
              fail("high surrogate followed by a non-low-surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace nc
