#pragma once

#include <cstdint>
#include <vector>

namespace nc {

/// Deterministic, splittable pseudo-random generator.
///
/// The simulator must be fully reproducible from a single 64-bit seed: every
/// node (and every boosting version at every node) derives an independent
/// stream via `Rng::derive`, so executions are bit-identical across runs and
/// independent of scheduling order. The core generator is xoshiro256**, seeded
/// through SplitMix64 as recommended by its authors.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Returns the next 64 uniformly random bits.
  std::uint64_t next_u64() noexcept;

  /// Returns a uniform integer in [0, bound). bound == 0 yields 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Returns true with probability `p` (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept;

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Derives an independent child generator. Streams derived with distinct
  /// `stream` values (e.g. node IDs) are statistically independent; the
  /// derivation is a keyed SplitMix64 hash of (state, stream).
  [[nodiscard]] Rng derive(std::uint64_t stream) const noexcept;

  /// Fisher-Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k > n returns all of [0,n)).
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k) noexcept;

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step: the standard 64-bit finalizer-based generator, also used
/// as a hash for seed derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace nc
