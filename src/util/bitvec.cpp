#include "util/bitvec.hpp"

#include <bit>

namespace nc {

void BitVec::assign_zero(std::size_t n) {
  n_ = n;
  words_.assign((n + 63) / 64, 0);
}

std::size_t BitVec::count() const noexcept {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

std::size_t BitVec::count_and(const BitVec& other) const noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return c;
}

BitVec& BitVec::operator|=(const BitVec& other) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::subtract(const BitVec& other) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool BitVec::none() const noexcept {
  for (const auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<std::uint32_t> BitVec::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

BitVec BitVec::from_indices(std::size_t n,
                            const std::vector<std::uint32_t>& indices) {
  BitVec v(n);
  for (const auto i : indices) v.set(i);
  return v;
}

}  // namespace nc
